// Package measures implements the discriminative measures and the
// analytical results at the heart of the paper (Section 3.1.2 and 3.2):
// information gain and Fisher score of a binary pattern feature, their
// closed-form upper bounds as functions of the pattern's support θ, and
// the min_sup-setting strategy θ* = argmax_θ (IGub(θ) ≤ IG0) (Eq. 8).
package measures

import (
	"fmt"
	"math"

	"dfpc/internal/bitset"
)

// log2 with the convention 0·log2(0) = 0 handled by callers. The
// domain guard pins non-positive arguments to the x→0⁺ limit so a
// caller that slips past its own guard gets -Inf (which propagates
// visibly) instead of math.Log2's silent NaN for x < 0.
func log2(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log2(x)
}

// H2 is the binary entropy function H2(p) = -p log p - (1-p) log(1-p).
func H2(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*log2(p) - (1-p)*log2(1-p)
}

// Entropy returns the Shannon entropy (bits) of a discrete distribution
// given as non-negative counts.
func Entropy(counts []float64) float64 {
	n := 0.0
	for _, c := range counts {
		n += c
	}
	if n <= 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / n
			h -= p * log2(p)
		}
	}
	return h
}

// ClassEntropy returns H(C) for the class masks (one bitset of rows per
// class).
func ClassEntropy(classMasks []*bitset.Bitset) float64 {
	counts := make([]float64, len(classMasks))
	for i, m := range classMasks {
		counts[i] = float64(m.Count())
	}
	return Entropy(counts)
}

// InfoGain returns IG(C|X) = H(C) − H(C|X) (Eq. 1) where X is the
// binary feature "pattern present", cover is the rows where X = 1, and
// classMasks partition all n rows by class.
func InfoGain(cover *bitset.Bitset, classMasks []*bitset.Bitset) float64 {
	n := float64(cover.Len())
	if n == 0 {
		return 0
	}
	m := len(classMasks)
	in := make([]float64, m)  // class counts where X=1
	out := make([]float64, m) // class counts where X=0
	total := make([]float64, m)
	nIn := 0.0
	for c, mask := range classMasks {
		cnt := float64(mask.Count())
		inC := float64(cover.AndCount(mask))
		in[c] = inC
		out[c] = cnt - inC
		total[c] = cnt
		nIn += inC
	}
	hc := Entropy(total)
	cond := 0.0
	if nIn > 0 {
		cond += nIn / n * Entropy(in)
	}
	if n-nIn > 0 {
		cond += (n - nIn) / n * Entropy(out)
	}
	ig := hc - cond
	if ig < 0 {
		ig = 0 // clamp tiny negative rounding noise
	}
	return ig
}

// FisherScore returns the Fisher score (Eq. 4) of the binary feature
// "pattern present": Fr = Σ_i n_i (μ_i − μ)² / Σ_i n_i σ_i², where for a
// Bernoulli feature μ_i is the within-class support fraction and
// σ_i² = μ_i(1−μ_i). A zero denominator with a zero numerator yields 0;
// a zero denominator with positive numerator yields +Inf (perfectly
// separating feature).
func FisherScore(cover *bitset.Bitset, classMasks []*bitset.Bitset) float64 {
	n := float64(cover.Len())
	if n == 0 {
		return 0
	}
	mu := float64(cover.Count()) / n
	num, den := 0.0, 0.0
	for _, mask := range classMasks {
		ni := float64(mask.Count())
		if ni == 0 {
			continue
		}
		mui := float64(cover.AndCount(mask)) / ni
		num += ni * (mui - mu) * (mui - mu)
		den += ni * mui * (1 - mui)
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return num / den
}

// feasibleQ returns the feasible range [qlo, qhi] of q = P(c=1 | x=1)
// given support θ = P(x=1) and class prior p = P(c=1): the joint
// distribution requires θq ≤ p and θ(1−q) ≤ 1−p.
func feasibleQ(theta, p float64) (qlo, qhi float64) {
	qlo = 0.0
	if v := (p - (1 - theta)) / theta; v > qlo {
		qlo = v
	}
	qhi = 1.0
	if v := p / theta; v < qhi {
		qhi = v
	}
	return qlo, qhi
}

// condEntropyAtQ evaluates H(C|X) for the two-class case at the given
// (θ, p, q) triple.
func condEntropyAtQ(theta, p, q float64) float64 {
	h := theta * H2(q)
	if theta < 1 {
		q0 := (p - theta*q) / (1 - theta)
		h += (1 - theta) * H2(q0)
	}
	return h
}

// IGUpperBound returns IGub(C|X) (Eq. 2) for a two-class problem: the
// maximum information gain any feature of support θ can attain, given
// class prior p = P(c = 1). H(C|X) is concave in q, so its lower bound
// is attained at a feasible endpoint of q; the bound is H2(p) minus
// that minimum (the paper's case analysis around Eq. 3, extended to all
// feasible endpoints so it is exact for every θ and p).
func IGUpperBound(theta, p float64) float64 {
	if theta <= 0 || theta >= 1 || p <= 0 || p >= 1 {
		return 0
	}
	qlo, qhi := feasibleQ(theta, p)
	hmin := math.Min(condEntropyAtQ(theta, p, qlo), condEntropyAtQ(theta, p, qhi))
	ig := H2(p) - hmin
	if ig < 0 {
		ig = 0
	}
	return ig
}

// IGUpperBoundMulti returns a valid information-gain upper bound for an
// m-class problem with the given class priors: IG(C|X) ≤ min(H(X),
// H(C)) = min(H2(θ), H(priors)). It is looser than the exact two-class
// bound but sound for any class count, and is what the min_sup strategy
// uses on multi-class datasets.
func IGUpperBoundMulti(theta float64, priors []float64) float64 {
	if theta <= 0 || theta >= 1 {
		return 0
	}
	return math.Min(H2(theta), Entropy(priors))
}

// fisherAtQ evaluates Eq. (5): Fr = θ(p−q)² / (p(1−p)(1−θ) − θ(p−q)²),
// the two-class Fisher score at the (θ, p, q) triple. Degenerate
// denominators follow the paper's conventions: Y = 0 ⇒ Fr = 0 by Eq. 4;
// Y − Z ≤ 0 with Z > 0 ⇒ +Inf (the θ → p blow-up).
func fisherAtQ(theta, p, q float64) float64 {
	y := p * (1 - p) * (1 - theta)
	z := theta * (p - q) * (p - q)
	if y == 0 {
		return 0
	}
	if z == 0 {
		return 0
	}
	if y-z <= 0 {
		return math.Inf(1)
	}
	return z / (y - z)
}

// FisherUpperBound returns Frub(θ): the maximum Fisher score any
// feature of support θ can attain in a two-class problem with prior p.
// Fr increases with (p−q)², so the bound sits at the feasible endpoint
// of q farthest from p (Eq. 6 is the q = 1 case for θ ≤ p, p ≤ 1/2).
func FisherUpperBound(theta, p float64) float64 {
	if theta <= 0 || theta >= 1 || p <= 0 || p >= 1 {
		return 0
	}
	qlo, qhi := feasibleQ(theta, p)
	return math.Max(fisherAtQ(theta, p, qlo), fisherAtQ(theta, p, qhi))
}

// MinSupportForIG implements the min_sup-setting strategy (Section 3.2,
// Eq. 8): given a feature-filter threshold ig0, class prior p, and
// dataset size n, it returns the largest absolute support s* such that
// IGub(s/n) ≤ ig0 for every s ≤ s*. Features with support ≤ s* can be
// skipped without losing any feature an IG filter at ig0 would keep, so
// mining with min_sup = s*+1 is lossless w.r.t. that filter. Returns 0
// when even support 1 can exceed ig0.
func MinSupportForIG(ig0, p float64, n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("measures: n = %d, want > 0", n)
	}
	if ig0 < 0 {
		return 0, fmt.Errorf("measures: ig0 = %v, want >= 0", ig0)
	}
	// IGub(θ) rises from 0 toward H2(p) as θ grows in the low-support
	// region; scan until the bound first exceeds ig0.
	s := 0
	for cand := 1; cand <= n; cand++ {
		if IGUpperBound(float64(cand)/float64(n), p) > ig0 {
			break
		}
		s = cand
	}
	return s, nil
}

// MinSupportForIGMulti is MinSupportForIG with the multi-class bound
// IGUpperBoundMulti.
func MinSupportForIGMulti(ig0 float64, priors []float64, n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("measures: n = %d, want > 0", n)
	}
	if ig0 < 0 {
		return 0, fmt.Errorf("measures: ig0 = %v, want >= 0", ig0)
	}
	s := 0
	for cand := 1; cand <= n; cand++ {
		if IGUpperBoundMulti(float64(cand)/float64(n), priors) > ig0 {
			break
		}
		s = cand
	}
	return s, nil
}

// MinSupportForFisher returns the largest absolute support s* such that
// FisherUpperBound(s/n) ≤ fr0 for every s ≤ s*, the Fisher-score
// variant of the strategy.
func MinSupportForFisher(fr0, p float64, n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("measures: n = %d, want > 0", n)
	}
	if fr0 < 0 {
		return 0, fmt.Errorf("measures: fr0 = %v, want >= 0", fr0)
	}
	s := 0
	for cand := 1; cand <= n; cand++ {
		if FisherUpperBound(float64(cand)/float64(n), p) > fr0 {
			break
		}
		s = cand
	}
	return s, nil
}
