package measures

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dfpc/internal/bitset"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestH2(t *testing.T) {
	if got := H2(0.5); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("H2(0.5) = %v, want 1", got)
	}
	if H2(0) != 0 || H2(1) != 0 {
		t.Fatal("H2 at extremes should be 0")
	}
	if got := H2(0.25); !almostEqual(got, 0.8112781244591328, 1e-12) {
		t.Fatalf("H2(0.25) = %v", got)
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{1, 1, 1, 1}); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("uniform-4 entropy = %v, want 2", got)
	}
	if got := Entropy([]float64{5, 0, 0}); got != 0 {
		t.Fatalf("degenerate entropy = %v, want 0", got)
	}
	if got := Entropy(nil); got != 0 {
		t.Fatalf("empty entropy = %v, want 0", got)
	}
}

// masksFor builds class masks for a label vector.
func masksFor(labels []int, classes int) []*bitset.Bitset {
	masks := make([]*bitset.Bitset, classes)
	for c := range masks {
		masks[c] = bitset.New(len(labels))
	}
	for i, y := range labels {
		masks[y].Set(i)
	}
	return masks
}

func TestInfoGainPerfectFeature(t *testing.T) {
	labels := []int{0, 0, 0, 1, 1, 1}
	masks := masksFor(labels, 2)
	cover := bitset.FromIndices(6, []int{3, 4, 5}) // exactly class 1
	if got := InfoGain(cover, masks); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("perfect feature IG = %v, want 1", got)
	}
}

func TestInfoGainUselessFeature(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	masks := masksFor(labels, 2)
	cover := bitset.FromIndices(4, []int{0, 2}) // half of each class
	if got := InfoGain(cover, masks); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("useless feature IG = %v, want 0", got)
	}
}

func TestInfoGainHandComputed(t *testing.T) {
	// 10 rows, p = 0.4 (4 positive). Feature covers 5 rows of which 3
	// positive. H(C) = H2(0.4); H(C|X) = 0.5*H2(3/5) + 0.5*H2(1/5).
	labels := []int{1, 1, 1, 1, 0, 0, 0, 0, 0, 0}
	masks := masksFor(labels, 2)
	cover := bitset.FromIndices(10, []int{0, 1, 2, 4, 5})
	want := H2(0.4) - 0.5*H2(0.6) - 0.5*H2(0.2)
	if got := InfoGain(cover, masks); !almostEqual(got, want, 1e-12) {
		t.Fatalf("IG = %v, want %v", got, want)
	}
}

func TestInfoGainEmptyAndFullCover(t *testing.T) {
	labels := []int{0, 1, 0, 1}
	masks := masksFor(labels, 2)
	empty := bitset.New(4)
	if got := InfoGain(empty, masks); got != 0 {
		t.Fatalf("empty cover IG = %v", got)
	}
	full := bitset.New(4)
	full.SetAll()
	if got := InfoGain(full, masks); got != 0 {
		t.Fatalf("full cover IG = %v", got)
	}
}

func TestFisherScorePerfectFeature(t *testing.T) {
	labels := []int{0, 0, 0, 1, 1, 1}
	masks := masksFor(labels, 2)
	cover := bitset.FromIndices(6, []int{3, 4, 5})
	if got := FisherScore(cover, masks); !math.IsInf(got, 1) {
		t.Fatalf("perfect feature Fisher = %v, want +Inf", got)
	}
}

func TestFisherScoreUselessFeature(t *testing.T) {
	labels := []int{0, 0, 1, 1}
	masks := masksFor(labels, 2)
	cover := bitset.FromIndices(4, []int{0, 2})
	if got := FisherScore(cover, masks); !almostEqual(got, 0, 1e-12) {
		t.Fatalf("useless feature Fisher = %v, want 0", got)
	}
}

func TestFisherScoreHandComputed(t *testing.T) {
	// 6 rows: class 0 = {0,1,2}, class 1 = {3,4,5}. Cover = {0,1,3}.
	// μ0 = 2/3, μ1 = 1/3, μ = 1/2.
	// num = 3(2/3−1/2)² + 3(1/3−1/2)² = 3·(1/36)·2 = 1/6.
	// den = 3·(2/9) + 3·(2/9) = 4/3. Fr = (1/6)/(4/3) = 1/8.
	labels := []int{0, 0, 0, 1, 1, 1}
	masks := masksFor(labels, 2)
	cover := bitset.FromIndices(6, []int{0, 1, 3})
	if got := FisherScore(cover, masks); !almostEqual(got, 0.125, 1e-12) {
		t.Fatalf("Fisher = %v, want 0.125", got)
	}
}

func TestIGUpperBoundPaperShape(t *testing.T) {
	p := 0.5
	// Rises with θ in the low-support region.
	prev := 0.0
	for _, theta := range []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5} {
		ub := IGUpperBound(theta, p)
		if ub < prev-1e-12 {
			t.Fatalf("IGub not rising at θ=%v: %v < %v", theta, ub, prev)
		}
		prev = ub
	}
	// At θ = p the bound reaches H(C).
	if got := IGUpperBound(0.5, 0.5); !almostEqual(got, 1, 1e-9) {
		t.Fatalf("IGub(p,p) = %v, want 1", got)
	}
	// Falls again at very high support ("stop word" effect).
	if IGUpperBound(0.95, 0.5) >= IGUpperBound(0.5, 0.5) {
		t.Fatal("IGub should decrease at very high support")
	}
	// Small at very low support: the paper cites ~0.06 at θ = 5%.
	if got := IGUpperBound(0.05, 0.5); got > 0.3 {
		t.Fatalf("IGub(0.05) = %v, unexpectedly large", got)
	}
}

func TestIGUpperBoundEq3Case(t *testing.T) {
	// For θ ≤ p and p ≤ 1/2 the q=1 endpoint yields Hlb = (1−θ)·H2((p−θ)/(1−θ));
	// the exact bound must be at least H2(p) − that value.
	p, theta := 0.4, 0.2
	q1 := H2(p) - (1-theta)*H2((p-theta)/(1-theta))
	if got := IGUpperBound(theta, p); got < q1-1e-12 {
		t.Fatalf("IGub = %v < q=1 bound %v", got, q1)
	}
}

func TestIGUpperBoundDominatesEmpirical(t *testing.T) {
	// Property: for random two-class data and random features, the
	// empirical IG never exceeds IGub at the feature's support.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(200)
		labels := make([]int, n)
		pos := 0
		for i := range labels {
			labels[i] = r.Intn(2)
			pos += labels[i]
		}
		if pos == 0 || pos == n {
			return true // degenerate class distribution, bound trivially 0=IG
		}
		masks := masksFor(labels, 2)
		p := float64(pos) / float64(n)
		cover := bitset.New(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				cover.Set(i)
			}
		}
		sup := cover.Count()
		if sup == 0 || sup == n {
			return true
		}
		theta := float64(sup) / float64(n)
		return InfoGain(cover, masks) <= IGUpperBound(theta, p)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFisherUpperBoundDominatesEmpirical(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(200)
		labels := make([]int, n)
		pos := 0
		for i := range labels {
			labels[i] = r.Intn(2)
			pos += labels[i]
		}
		if pos == 0 || pos == n {
			return true
		}
		masks := masksFor(labels, 2)
		p := float64(pos) / float64(n)
		cover := bitset.New(n)
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				cover.Set(i)
			}
		}
		sup := cover.Count()
		if sup == 0 || sup == n {
			return true
		}
		theta := float64(sup) / float64(n)
		fs := FisherScore(cover, masks)
		ub := FisherUpperBound(theta, p)
		if math.IsInf(ub, 1) {
			return true
		}
		return fs <= ub+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFisherUpperBoundEq6(t *testing.T) {
	// Eq. 6: for θ ≤ p, p ≤ 1/2, Frub|q=1 = θ(1−p)/(p−θ).
	p, theta := 0.4, 0.2
	want := theta * (1 - p) / (p - theta)
	if got := FisherUpperBound(theta, p); !almostEqual(got, want, 1e-12) {
		t.Fatalf("Frub = %v, want %v", got, want)
	}
	// Blows up as θ → p.
	if got := FisherUpperBound(0.399999, 0.4); got < 1000 {
		t.Fatalf("Frub near θ=p = %v, want large", got)
	}
}

func TestFisherUpperBoundMonotoneBelowP(t *testing.T) {
	p := 0.5
	prev := 0.0
	for _, theta := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.45} {
		ub := FisherUpperBound(theta, p)
		if ub < prev {
			t.Fatalf("Frub not monotone at θ=%v", theta)
		}
		prev = ub
	}
}

func TestIGUpperBoundMulti(t *testing.T) {
	priors := []float64{0.25, 0.25, 0.25, 0.25}
	// Bounded by H(X) at low support.
	if got := IGUpperBoundMulti(0.01, priors); got > H2(0.01)+1e-12 {
		t.Fatalf("multi bound = %v exceeds H2(θ)", got)
	}
	// Bounded by H(C) everywhere.
	if got := IGUpperBoundMulti(0.5, priors); got > 2+1e-12 {
		t.Fatalf("multi bound = %v exceeds H(C)=2", got)
	}
	if IGUpperBoundMulti(0, priors) != 0 || IGUpperBoundMulti(1, priors) != 0 {
		t.Fatal("multi bound at extremes should be 0")
	}
}

func TestMinSupportForIG(t *testing.T) {
	n := 1000
	p := 0.5
	s, err := MinSupportForIG(0.1, p, n)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 || s >= n/2 {
		t.Fatalf("s* = %d, implausible", s)
	}
	// Everything at or below s* must satisfy the bound.
	for c := 1; c <= s; c++ {
		if IGUpperBound(float64(c)/float64(n), p) > 0.1 {
			t.Fatalf("IGub violated at support %d <= s*=%d", c, s)
		}
	}
	// s*+1 must exceed the threshold (maximality).
	if IGUpperBound(float64(s+1)/float64(n), p) <= 0.1 {
		t.Fatalf("s* = %d not maximal", s)
	}
}

func TestMinSupportForIGMonotoneInThreshold(t *testing.T) {
	n := 500
	p := 0.3
	prev := -1
	for _, ig0 := range []float64{0.01, 0.05, 0.1, 0.2, 0.4} {
		s, err := MinSupportForIG(ig0, p, n)
		if err != nil {
			t.Fatal(err)
		}
		if s < prev {
			t.Fatalf("θ* decreased as IG0 grew: %d < %d at ig0=%v", s, prev, ig0)
		}
		prev = s
	}
}

func TestMinSupportForFisher(t *testing.T) {
	n := 1000
	p := 0.5
	s, err := MinSupportForFisher(0.2, p, n)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("s* = %d", s)
	}
	for c := 1; c <= s; c++ {
		if FisherUpperBound(float64(c)/float64(n), p) > 0.2 {
			t.Fatalf("Frub violated at support %d", c)
		}
	}
	if FisherUpperBound(float64(s+1)/float64(n), p) <= 0.2 {
		t.Fatalf("s* = %d not maximal", s)
	}
}

func TestMinSupportErrors(t *testing.T) {
	if _, err := MinSupportForIG(0.1, 0.5, 0); err == nil {
		t.Fatal("n=0 should error")
	}
	if _, err := MinSupportForIG(-1, 0.5, 10); err == nil {
		t.Fatal("negative ig0 should error")
	}
	if _, err := MinSupportForFisher(-1, 0.5, 10); err == nil {
		t.Fatal("negative fr0 should error")
	}
	if _, err := MinSupportForIGMulti(-1, []float64{0.5, 0.5}, 10); err == nil {
		t.Fatal("negative ig0 should error (multi)")
	}
}

func TestFeasibleQ(t *testing.T) {
	// θ ≤ min(p, 1−p): full range.
	qlo, qhi := feasibleQ(0.2, 0.5)
	if qlo != 0 || !almostEqual(qhi, 1, 1e-12) {
		t.Fatalf("feasibleQ(0.2,0.5) = (%v,%v)", qlo, qhi)
	}
	// θ > p: qhi = p/θ.
	_, qhi = feasibleQ(0.8, 0.4)
	if !almostEqual(qhi, 0.5, 1e-12) {
		t.Fatalf("qhi = %v, want 0.5", qhi)
	}
	// θ > 1−p: qlo = (p−1+θ)/θ.
	qlo, _ = feasibleQ(0.8, 0.6)
	if !almostEqual(qlo, 0.5, 1e-12) {
		t.Fatalf("qlo = %v, want 0.5", qlo)
	}
}
