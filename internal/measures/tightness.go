package measures

import (
	"math"
	"math/bits"

	"dfpc/internal/bitset"
	"dfpc/internal/obs"
)

// QualityRecorder streams per-pattern discriminative-power observations
// into an observer, reproducing the paper's empirical characterization
// of the search space from any real run:
//
//   - mine.ig_by_support.s<B> — information-gain distribution within
//     each log2 support bucket B (Figures 1–2: IG against support),
//   - mine.ig_by_len.l<L> — information-gain distribution per pattern
//     length, lengths ≥ igMaxLenBucket aggregated (Figure 3),
//   - measures.ig_bound_gap_microbits — distribution of IGub(θ) − IG,
//     the slack in the Eq. 2/3 bound at each pattern's support, plus
//     the measures.ig_bound_checks / measures.ig_bound_violations
//     counter pair (a violation would falsify the bound analysis that
//     justifies min_sup selection).
//
// IG values are recorded in micro-bits (×1e6) because obs histograms
// bucket int64 samples. All sinks are order-insensitive shared-registry
// recorders, so totals are identical however the caller's work is
// scheduled — but one recorder instance must only be used from a single
// goroutine (its histogram-handle cache is unsynchronized, like the
// miners' counter caches).
//
// A nil *QualityRecorder (observability off) makes Observe a nil check.
type QualityRecorder struct {
	o      *obs.Observer
	n      int
	priors []float64
	p      float64 // positive-class prior when exactly two classes
	two    bool

	checks     *obs.Counter
	violations *obs.Counter
	gap        *obs.Histogram
	bySupport  [64]*obs.Histogram
	byLen      [igMaxLenBucket]*obs.Histogram
}

// igMaxLenBucket caps the per-length histogram cardinality; length ≥ 16
// lands in the last bucket.
const igMaxLenBucket = 16

// igScale converts bits to the micro-bit integers obs histograms store.
const igScale = 1e6

// boundEps absorbs float rounding before declaring a bound violated.
const boundEps = 1e-9

// NewQualityRecorder builds a recorder over the dataset's class masks
// (one bitset of rows per class, as used by InfoGain). It returns nil —
// a valid disabled recorder — when the observer is nil.
func NewQualityRecorder(o *obs.Observer, classMasks []*bitset.Bitset) *QualityRecorder {
	if o == nil {
		return nil
	}
	n := 0
	priors := make([]float64, len(classMasks))
	for _, m := range classMasks {
		n += m.Count()
	}
	if n == 0 {
		return nil
	}
	for i, m := range classMasks {
		priors[i] = float64(m.Count()) / float64(n)
	}
	q := &QualityRecorder{
		o:          o,
		n:          n,
		priors:     priors,
		two:        len(classMasks) == 2,
		checks:     o.Counter("measures.ig_bound_checks"),
		violations: o.Counter("measures.ig_bound_violations"),
		gap:        o.Histogram("measures.ig_bound_gap_microbits"),
	}
	if q.two {
		q.p = priors[1]
	}
	return q
}

// Bound returns the IG upper bound the recorder checks against at
// support θ = support/n: the exact two-class IGub (Eq. 2) or the sound
// multi-class min(H2(θ), H(C)) bound.
func (q *QualityRecorder) Bound(support int) float64 {
	if q == nil {
		return 0
	}
	theta := float64(support) / float64(q.n)
	if q.two {
		return IGUpperBound(theta, q.p)
	}
	return IGUpperBoundMulti(theta, q.priors)
}

// Observe records one pattern's realized information gain at its
// absolute support and length.
func (q *QualityRecorder) Observe(ig float64, support, length int) {
	if q == nil {
		return
	}
	mb := igMicrobits(ig)

	// IG by support: log2 bucket of the absolute support count.
	sb := bits.Len(uint(support))
	if sb >= len(q.bySupport) {
		sb = len(q.bySupport) - 1
	}
	h := q.bySupport[sb]
	if h == nil {
		h = q.o.Histogram(igBucketName("mine.ig_by_support.s", sb))
		q.bySupport[sb] = h
	}
	h.Observe(mb)

	// IG by pattern length.
	lb := length
	if lb < 1 {
		lb = 1
	}
	if lb > igMaxLenBucket {
		lb = igMaxLenBucket
	}
	h = q.byLen[lb-1]
	if h == nil {
		h = q.o.Histogram(igBucketName("mine.ig_by_len.l", lb))
		q.byLen[lb-1] = h
	}
	h.Observe(mb)

	// Bound tightness: realized IG against IGub at this support.
	ub := q.Bound(support)
	q.checks.Inc()
	if ig > ub+boundEps {
		q.violations.Inc()
		return
	}
	gap := ub - ig
	if gap < 0 {
		gap = 0
	}
	q.gap.Observe(igMicrobits(gap))
}

// igMicrobits converts an IG value in bits to clamped micro-bits.
func igMicrobits(ig float64) int64 {
	if ig <= 0 || math.IsNaN(ig) {
		return 0
	}
	v := ig * igScale
	if v > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(v + 0.5)
}

// igBucketName renders prefix plus a two-digit bucket index, zero-
// padded so report listings sort numerically.
func igBucketName(prefix string, b int) string {
	return prefix + string([]byte{byte('0' + b/10%10), byte('0' + b%10)})
}
