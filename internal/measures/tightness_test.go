package measures

import (
	"math"
	"testing"

	"dfpc/internal/bitset"
	"dfpc/internal/obs"
)

// twoClassMasks builds a 10-row dataset: rows 0–4 class 0, rows 5–9
// class 1.
func twoClassMasks() []*bitset.Bitset {
	c0 := bitset.New(10)
	c1 := bitset.New(10)
	for i := 0; i < 5; i++ {
		c0.Set(i)
		c1.Set(i + 5)
	}
	return []*bitset.Bitset{c0, c1}
}

func TestQualityRecorderHistograms(t *testing.T) {
	o := obs.New()
	q := NewQualityRecorder(o, twoClassMasks())
	if q == nil {
		t.Fatal("recorder must be live with a real observer")
	}

	// A perfect split: a pattern covering exactly the 5 class-0 rows has
	// IG = H(1/2) = 1 bit, which the bound at θ=0.5 must admit.
	q.Observe(1.0, 5, 2)

	r := o.Report("tightness")
	if got := r.Counters["measures.ig_bound_checks"]; got != 1 {
		t.Fatalf("ig_bound_checks = %d, want 1", got)
	}
	if got := r.Counters["measures.ig_bound_violations"]; got != 0 {
		t.Fatalf("ig_bound_violations = %d, want 0 (IG=1 at θ=0.5 is achievable)", got)
	}
	// support 5 → bits.Len(5) = 3 → s03; length 2 → l02.
	if h, ok := r.Histograms["mine.ig_by_support.s03"]; !ok || h.Count != 1 {
		t.Fatalf("mine.ig_by_support.s03 missing or wrong count: %+v (have %v)", h, keys(r.Histograms))
	}
	if h, ok := r.Histograms["mine.ig_by_len.l02"]; !ok || h.Count != 1 {
		t.Fatalf("mine.ig_by_len.l02 missing or wrong count: %+v", h)
	}
	if h, ok := r.Histograms["measures.ig_bound_gap_microbits"]; !ok || h.Count != 1 {
		t.Fatalf("gap histogram missing or wrong count: %+v", h)
	}
}

func TestQualityRecorderBoundViolation(t *testing.T) {
	o := obs.New()
	q := NewQualityRecorder(o, twoClassMasks())
	// 10 bits of IG on a 2-class problem is impossible: must count as a
	// violation and record no gap sample.
	q.Observe(10.0, 5, 2)
	r := o.Report("violation")
	if got := r.Counters["measures.ig_bound_violations"]; got != 1 {
		t.Fatalf("ig_bound_violations = %d, want 1", got)
	}
	if h := r.Histograms["measures.ig_bound_gap_microbits"]; h.Count != 0 {
		t.Fatalf("violations must not feed the gap histogram: %+v", h)
	}
}

func TestQualityRecorderBoundMatchesMeasures(t *testing.T) {
	q := NewQualityRecorder(obs.New(), twoClassMasks())
	for _, sup := range []int{1, 3, 5, 8, 10} {
		theta := float64(sup) / 10
		want := IGUpperBound(theta, 0.5)
		if got := q.Bound(sup); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Bound(%d) = %v, want IGUpperBound(%v, 0.5) = %v", sup, got, theta, want)
		}
	}
}

func TestQualityRecorderMultiClass(t *testing.T) {
	c0, c1, c2 := bitset.New(9), bitset.New(9), bitset.New(9)
	for i := 0; i < 3; i++ {
		c0.Set(i)
		c1.Set(i + 3)
		c2.Set(i + 6)
	}
	o := obs.New()
	q := NewQualityRecorder(o, []*bitset.Bitset{c0, c1, c2})
	q.Observe(0.5, 3, 1)
	r := o.Report("multi")
	if got := r.Counters["measures.ig_bound_checks"]; got != 1 {
		t.Fatalf("checks = %d, want 1", got)
	}
	if got := r.Counters["measures.ig_bound_violations"]; got != 0 {
		t.Fatalf("violations = %d, want 0", got)
	}
}

func TestQualityRecorderNilSafe(t *testing.T) {
	if q := NewQualityRecorder(nil, twoClassMasks()); q != nil {
		t.Fatal("nil observer must yield a nil (disabled) recorder")
	}
	var q *QualityRecorder
	q.Observe(1.0, 5, 2) // must not panic
	if q.Bound(5) != 0 {
		t.Fatal("nil recorder Bound must be 0")
	}
	// Empty masks are also a disabled recorder, not a divide-by-zero.
	if q := NewQualityRecorder(obs.New(), []*bitset.Bitset{bitset.New(4), bitset.New(4)}); q != nil {
		t.Fatal("zero-row masks must yield a nil recorder")
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
