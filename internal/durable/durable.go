// Package durable provides crash-safe artifact IO for every file the
// pipeline persists: models, checkpoints, reports, traces, CSVs, and
// profiles.
//
// Two guarantees:
//
//   - Atomicity. WriteAtomic and AtomicFile stage content in a hidden
//     temp file in the destination directory, fsync it, rename it over
//     the destination, and fsync the directory. A crash at any instant
//     leaves either the complete old file or the complete new file on
//     disk — never a torn mixture (the write-kill-reload chaos loop
//     pins this).
//
//   - Validation. Gob snapshots are wrapped in a versioned envelope
//     (magic, format version, kind, payload schema version, payload
//     length, CRC32) so Load distinguishes "not one of our artifacts
//     at all" and "corrupt/truncated" (ErrCorruptArtifact) from "a
//     real artifact from an incompatible schema" (ErrVersionMismatch),
//     and never feeds garbage to gob.
//
// Transient filesystem errors (EINTR-class, plus injected
// faults.ErrTransient) are retried with a short backoff; persistent
// errors surface after the attempts are exhausted. Fault-injection
// points fs.create/fs.write/fs.sync/fs.rename/fs.close fire through
// the optional *faults.Registry so the chaos suite can prove each
// failure path leaves no torn file behind.
package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"dfpc/internal/faults"
)

// Sentinel taxonomy for artifact loading, matched with errors.Is.
var (
	// ErrCorruptArtifact means the bytes are not a valid artifact:
	// wrong magic, truncated header or payload, checksum mismatch, or
	// an undecodable payload.
	ErrCorruptArtifact = errors.New("durable: corrupt artifact")
	// ErrVersionMismatch means the envelope is intact but carries a
	// different kind or an unsupported format/schema version.
	ErrVersionMismatch = errors.New("durable: artifact version mismatch")
)

// retries and backoff for transient filesystem errors. sleepFn is a
// package variable so tests can count backoffs without wall-clock.
const maxAttempts = 4

var sleepFn = time.Sleep

func transientErr(err error) bool {
	return errors.Is(err, faults.ErrTransient) ||
		errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN)
}

// retry runs op up to maxAttempts times, backing off 1ms, 2ms, 4ms
// between attempts, as long as the failure is transient.
func retry(op func() error) error {
	var err error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			sleepFn(time.Millisecond << (attempt - 1))
		}
		if err = op(); err == nil || !transientErr(err) {
			return err
		}
	}
	return err
}

// AtomicFile is a streaming destination that commits atomically on
// Close: content goes to a hidden temp file in the destination
// directory and only an fsync'd rename publishes it. Abandoning the
// file (Abort, or a crash) leaves the destination untouched.
//
// It serves writers that stream for the whole run (CPU profiles,
// execution traces) where a one-shot WriteAtomic callback can't work.
type AtomicFile struct {
	f      *os.File
	dest   string
	faults *faults.Registry
	done   bool
}

// Create opens an atomic file targeting path. r may be nil.
func Create(path string, r *faults.Registry) (*AtomicFile, error) {
	if err := r.Hit(faults.FSCreate); err != nil {
		return nil, err
	}
	dir := filepath.Dir(path)
	var f *os.File
	err := retry(func() error {
		var e error
		f, e = os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
		return e
	})
	if err != nil {
		return nil, fmt.Errorf("durable: staging %s: %w", path, err)
	}
	return &AtomicFile{f: f, dest: path, faults: r}, nil
}

// Write implements io.Writer on the staged temp file.
func (a *AtomicFile) Write(p []byte) (int, error) {
	if err := a.faults.Hit(faults.FSWrite); err != nil {
		return 0, err
	}
	return a.f.Write(p)
}

// Close syncs the staged content and atomically publishes it at the
// destination path. On any error the temp file is removed and the
// destination is left as it was.
func (a *AtomicFile) Close() error {
	if a.done {
		return nil
	}
	a.done = true
	tmp := a.f.Name()
	fail := func(err error) error {
		a.f.Close()
		os.Remove(tmp)
		return err
	}
	if err := a.faults.Hit(faults.FSSync); err != nil {
		return fail(err)
	}
	if err := retry(a.f.Sync); err != nil {
		return fail(fmt.Errorf("durable: sync %s: %w", a.dest, err))
	}
	if err := a.faults.Hit(faults.FSClose); err != nil {
		return fail(err)
	}
	if err := a.f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: close %s: %w", a.dest, err)
	}
	if err := a.faults.Hit(faults.FSRename); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := retry(func() error { return os.Rename(tmp, a.dest) }); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: publish %s: %w", a.dest, err)
	}
	syncDir(filepath.Dir(a.dest))
	return nil
}

// Abort discards the staged content without touching the destination.
// Safe to call after Close (no-op).
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	tmp := a.f.Name()
	a.f.Close()
	os.Remove(tmp)
}

// syncDir fsyncs a directory so the rename itself is durable. Best
// effort: some filesystems reject directory fsync, and the rename is
// already atomic for ordering purposes.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// WriteAtomic writes an artifact at path via the write callback with
// full atomic-replace semantics. The callback streams into a staged
// temp file; only if it and the subsequent fsync+rename all succeed
// does path change. r may be nil.
func WriteAtomic(path string, r *faults.Registry, write func(w io.Writer) error) error {
	a, err := Create(path, r)
	if err != nil {
		return err
	}
	if err := write(a); err != nil {
		a.Abort()
		return err
	}
	return a.Close()
}

// Envelope layout (big-endian):
//
//	magic        [4]byte  "DFPA"
//	formatVer    uint16   envelope format (this package) = 1
//	kindLen      uint16
//	kind         []byte   artifact kind, e.g. "dfpc-model"
//	payloadVer   uint32   payload schema version (caller-owned)
//	payloadLen   uint64
//	payload      []byte
//	crc32        uint32   IEEE, over everything after magic up to here
const (
	magic         = "DFPA"
	formatVersion = 1
	// maxPayload bounds decode-side allocation so a corrupt or
	// adversarial length field cannot OOM the loader (fuzz relies on
	// this).
	maxPayload = 1 << 30
	maxKindLen = 1 << 10
)

// Encode writes payload wrapped in the versioned envelope.
func Encode(w io.Writer, kind string, payloadVersion uint32, payload []byte) error {
	if len(kind) == 0 || len(kind) > maxKindLen {
		return fmt.Errorf("durable: kind length %d out of range", len(kind))
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("durable: payload %d bytes exceeds cap", len(payload))
	}
	var hdr bytes.Buffer
	hdr.WriteString(magic)
	binary.Write(&hdr, binary.BigEndian, uint16(formatVersion))
	binary.Write(&hdr, binary.BigEndian, uint16(len(kind)))
	hdr.WriteString(kind)
	binary.Write(&hdr, binary.BigEndian, payloadVersion)
	binary.Write(&hdr, binary.BigEndian, uint64(len(payload)))

	crc := crc32.NewIEEE()
	crc.Write(hdr.Bytes()[len(magic):]) // everything after magic
	crc.Write(payload)

	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return binary.Write(w, binary.BigEndian, crc.Sum32())
}

// Decode reads one envelope of the expected kind and returns its
// payload schema version and payload. Violations of the format return
// ErrCorruptArtifact; an intact envelope of a different kind or an
// unsupported format version returns ErrVersionMismatch. Decode stops
// at the envelope's end and does not require EOF (file loaders that
// want exactly-one-envelope semantics check for trailing bytes
// themselves, e.g. LoadFile).
func Decode(r io.Reader, kind string) (payloadVersion uint32, payload []byte, err error) {
	corrupt := func(format string, args ...any) (uint32, []byte, error) {
		return 0, nil, fmt.Errorf("%w: %s", ErrCorruptArtifact, fmt.Sprintf(format, args...))
	}
	var mg [4]byte
	if _, err := io.ReadFull(r, mg[:]); err != nil {
		return corrupt("missing magic: %v", err)
	}
	if string(mg[:]) != magic {
		return corrupt("bad magic %q", mg)
	}
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	var fv, kl uint16
	if err := binary.Read(tr, binary.BigEndian, &fv); err != nil {
		return corrupt("truncated format version")
	}
	if fv != formatVersion {
		return 0, nil, fmt.Errorf("%w: envelope format %d, this build reads %d",
			ErrVersionMismatch, fv, formatVersion)
	}
	if err := binary.Read(tr, binary.BigEndian, &kl); err != nil {
		return corrupt("truncated kind length")
	}
	if kl == 0 || kl > maxKindLen {
		return corrupt("kind length %d out of range", kl)
	}
	kb := make([]byte, kl)
	if _, err := io.ReadFull(tr, kb); err != nil {
		return corrupt("truncated kind")
	}
	var pv uint32
	var pl uint64
	if err := binary.Read(tr, binary.BigEndian, &pv); err != nil {
		return corrupt("truncated payload version")
	}
	if err := binary.Read(tr, binary.BigEndian, &pl); err != nil {
		return corrupt("truncated payload length")
	}
	if pl > maxPayload {
		return corrupt("payload length %d exceeds cap", pl)
	}
	payload = make([]byte, pl)
	if _, err := io.ReadFull(tr, payload); err != nil {
		return corrupt("truncated payload (want %d bytes)", pl)
	}
	var sum uint32
	if err := binary.Read(r, binary.BigEndian, &sum); err != nil {
		return corrupt("truncated checksum")
	}
	if sum != crc.Sum32() {
		return corrupt("checksum mismatch")
	}
	// Only after integrity is established do we judge the kind — a
	// checksum-valid envelope of another kind is a version problem,
	// not corruption.
	if string(kb) != kind {
		return 0, nil, fmt.Errorf("%w: artifact kind %q, want %q", ErrVersionMismatch, kb, kind)
	}
	return pv, payload, nil
}

// SaveFile atomically writes a single-envelope artifact file.
func SaveFile(path, kind string, payloadVersion uint32, payload []byte, r *faults.Registry) error {
	return WriteAtomic(path, r, func(w io.Writer) error {
		return Encode(w, kind, payloadVersion, payload)
	})
}

// LoadFile reads a file expected to hold exactly one envelope of the
// given kind. Trailing bytes after the envelope are corruption.
func LoadFile(path, kind string) (payloadVersion uint32, payload []byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	pv, pl, err := Decode(f, kind)
	if err != nil {
		return 0, nil, fmt.Errorf("%s: %w", path, err)
	}
	var one [1]byte
	if n, _ := f.Read(one[:]); n != 0 {
		return 0, nil, fmt.Errorf("%s: %w: trailing bytes after envelope", path, ErrCorruptArtifact)
	}
	return pv, pl, nil
}
