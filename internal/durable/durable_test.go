package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dfpc/internal/faults"
)

func TestWriteAtomicRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteAtomic(path, nil, func(w io.Writer) error {
		_, err := w.Write([]byte("hello"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
}

// TestWriteAtomicFailureLeavesOldFile injects a failure at every fs
// point in turn and checks the destination still holds the previous
// content and no temp files survive.
func TestWriteAtomicFailureLeavesOldFile(t *testing.T) {
	for _, point := range []string{faults.FSCreate, faults.FSWrite, faults.FSSync, faults.FSClose, faults.FSRename} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "artifact.bin")
			if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}
			r := faults.New(1)
			r.Arm(point, 1, faults.ErrInjected)
			err := WriteAtomic(path, r, func(w io.Writer) error {
				_, err := w.Write([]byte("new content"))
				return err
			})
			if !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("err = %v, want ErrInjected", err)
			}
			got, err := os.ReadFile(path)
			if err != nil || string(got) != "old" {
				t.Fatalf("destination after failed write: %q, %v (want old)", got, err)
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				if e.Name() != "artifact.bin" {
					t.Fatalf("leaked staging file %s", e.Name())
				}
			}
		})
	}
}

func TestWriteAtomicCallbackErrorAborts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	boom := errors.New("boom")
	if err := WriteAtomic(path, nil, func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("destination created despite callback error: %v", err)
	}
	if ents, _ := os.ReadDir(dir); len(ents) != 0 {
		t.Fatalf("staging leak: %v", ents)
	}
}

func TestRetryAbsorbsTransient(t *testing.T) {
	var slept []time.Duration
	old := sleepFn
	sleepFn = func(d time.Duration) { slept = append(slept, d) }
	defer func() { sleepFn = old }()

	calls := 0
	err := retry(func() error {
		calls++
		if calls < 3 {
			return faults.ErrTransient
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("retry: err=%v calls=%d", err, calls)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("backoff schedule %v", slept)
	}

	// Persistent transient errors exhaust the attempts.
	calls = 0
	if err := retry(func() error { calls++; return faults.ErrTransient }); !errors.Is(err, faults.ErrTransient) {
		t.Fatalf("exhausted retry err = %v", err)
	}
	if calls != maxAttempts {
		t.Fatalf("calls = %d, want %d", calls, maxAttempts)
	}

	// Non-transient errors do not retry.
	calls = 0
	boom := errors.New("disk on fire")
	if err := retry(func() error { calls++; return boom }); !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("non-transient: err=%v calls=%d", err, calls)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("gob bytes here")
	if err := Encode(&buf, "dfpc-model", 3, payload); err != nil {
		t.Fatal(err)
	}
	pv, got, err := Decode(bytes.NewReader(buf.Bytes()), "dfpc-model")
	if err != nil {
		t.Fatal(err)
	}
	if pv != 3 || !bytes.Equal(got, payload) {
		t.Fatalf("decoded pv=%d payload=%q", pv, got)
	}
}

func TestDecodeKindMismatchIsVersionError(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, "dfpc-checkpoint", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	_, _, err := Decode(bytes.NewReader(buf.Bytes()), "dfpc-model")
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("kind mismatch err = %v, want ErrVersionMismatch", err)
	}
}

func TestDecodeFutureFormatIsVersionError(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, "k", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint16(b[4:6], formatVersion+1)
	_, _, err := Decode(bytes.NewReader(b), "k")
	if !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("future format err = %v, want ErrVersionMismatch", err)
	}
}

func TestDecodeCorruptions(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, "dfpc-model", 1, []byte("payload payload payload")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	// Every strict prefix is truncation → ErrCorruptArtifact.
	for cut := 0; cut < len(whole); cut++ {
		_, _, err := Decode(bytes.NewReader(whole[:cut]), "dfpc-model")
		if !errors.Is(err, ErrCorruptArtifact) {
			t.Fatalf("truncated at %d: err = %v, want ErrCorruptArtifact", cut, err)
		}
	}
	// Every single-bit flip fails closed (corrupt, or version mismatch
	// when the flip lands in the format-version field itself — Decode
	// checks it before the checksum so ancient readers fail cleanly).
	for i := 0; i < len(whole); i++ {
		mut := append([]byte(nil), whole...)
		mut[i] ^= 0x40
		_, _, err := Decode(bytes.NewReader(mut), "dfpc-model")
		if err == nil {
			t.Fatalf("bit flip at byte %d decoded cleanly", i)
		}
		if !errors.Is(err, ErrCorruptArtifact) && !errors.Is(err, ErrVersionMismatch) {
			t.Fatalf("bit flip at byte %d: non-sentinel err %v", i, err)
		}
	}
	// Garbage is corrupt.
	if _, _, err := Decode(strings.NewReader("not an artifact"), "dfpc-model"); !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("garbage err = %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.dfpc")
	if err := SaveFile(path, "dfpc-model", 2, []byte("abc"), nil); err != nil {
		t.Fatal(err)
	}
	pv, payload, err := LoadFile(path, "dfpc-model")
	if err != nil || pv != 2 || string(payload) != "abc" {
		t.Fatalf("LoadFile = %d, %q, %v", pv, payload, err)
	}

	// Trailing bytes after the envelope are corruption.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("junk"))
	f.Close()
	if _, _, err := LoadFile(path, "dfpc-model"); !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("trailing junk err = %v, want ErrCorruptArtifact", err)
	}
}

func TestEncodeRejectsBadKind(t *testing.T) {
	if err := Encode(io.Discard, "", 1, nil); err == nil {
		t.Fatal("empty kind accepted")
	}
	if err := Encode(io.Discard, strings.Repeat("k", maxKindLen+1), 1, nil); err == nil {
		t.Fatal("oversized kind accepted")
	}
}

// FuzzDecode pins the core chaos property of the envelope reader:
// arbitrary bytes never panic and never decode into a wrong-kind
// success — every outcome is a clean decode of what Encode wrote or a
// sentinel error.
func FuzzDecode(f *testing.F) {
	var buf bytes.Buffer
	Encode(&buf, "dfpc-model", 1, []byte("seed payload"))
	f.Add(buf.Bytes())
	buf.Reset()
	Encode(&buf, "dfpc-checkpoint", 7, bytes.Repeat([]byte{0xAB}, 256))
	f.Add(buf.Bytes())
	f.Add([]byte(magic))
	f.Add([]byte("DFPAxxxxxxxxxxxxxxxxxxxxxxxx"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		_, payload, err := Decode(bytes.NewReader(data), "dfpc-model")
		if err != nil {
			if !errors.Is(err, ErrCorruptArtifact) && !errors.Is(err, ErrVersionMismatch) {
				t.Fatalf("non-sentinel decode error: %v", err)
			}
			return
		}
		// A successful decode must re-encode to a decodable envelope.
		var out bytes.Buffer
		if err := Encode(&out, "dfpc-model", 1, payload); err != nil {
			t.Fatalf("re-encode of decoded payload failed: %v", err)
		}
	})
}
