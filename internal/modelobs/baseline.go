package modelobs

// Baseline is the training-time reference distribution embedded in
// the model artifact by core.Fit. Every field is computed from the
// training rows the model was fitted on, so a loaded model carries
// its own drift reference and a serving process needs no side
// channel back to the training data.
//
// Histograms use the same 64-bucket log2 layout as obs histograms
// (bucket i holds values with bit length i); confidences are stored
// in micro-units (ConfMicro) to fit that integer layout.
type Baseline struct {
	// Rows is the number of training rows the baseline saw.
	Rows int
	// NumClasses is the label arity.
	NumClasses int
	// Priors is the training label distribution.
	Priors []float64
	// PredMix is the model's own predicted-class distribution over
	// the training rows — the reference for live class-mix drift
	// (it differs from Priors exactly by the training error).
	PredMix []float64
	// FireRate is, per selected pattern feature, the fraction of
	// training rows its coverage bitset fires on (featsel.FireRates).
	FireRate []float64
	// ConfHist is the log2 histogram of training confidences in
	// micro-units (SVM margin or C4.5 leaf purity). All-zero when the
	// learner exposes no confidence.
	ConfHist []int64
	// DensityHist is the log2 histogram of feature-vector lengths
	// (items kept + patterns fired) over the training rows.
	DensityHist []int64
	// HasConf reports whether the learner exposes a confidence
	// (SVM margin / C4.5 leaf purity); when false the confidence and
	// low-confidence dimensions are inert.
	HasConf bool
	// LowConfCut is the p10 of the training confidence in micro-units:
	// live predictions at or below it count as "low confidence". The
	// cut is self-calibrating — ~10% of training rows sit at or below
	// it by construction.
	LowConfCut int64
	// LowConfRate is the exact fraction of training rows at or below
	// LowConfCut (≥ 0.10; ties can push it higher).
	LowConfRate float64
}

// Valid reports whether the baseline carries a usable reference
// distribution. Nil-safe: models loaded from pre-baseline envelopes
// have a nil Baseline.
func (b *Baseline) Valid() bool {
	if b == nil {
		return false
	}
	return b.Rows > 0 && len(b.PredMix) > 0
}

// NumPatterns returns the number of selected pattern features the
// baseline tracks fire rates for. Nil-safe.
func (b *Baseline) NumPatterns() int {
	if b == nil {
		return 0
	}
	return len(b.FireRate)
}

// Classes returns the label arity. Nil-safe.
func (b *Baseline) Classes() int {
	if b == nil {
		return 0
	}
	return b.NumClasses
}

// proportions returns hist normalized by its own mass (nil when the
// histogram is empty). Used once at Bind time to precompute the
// expected distributions the hot path compares against.
func proportions(hist []int64) []float64 {
	var total int64
	for _, c := range hist {
		total += c
	}
	if total == 0 {
		return nil
	}
	out := make([]float64, len(hist))
	for i, c := range hist {
		out[i] = float64(c) / float64(total)
	}
	return out
}
