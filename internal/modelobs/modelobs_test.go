package modelobs

import (
	"encoding/json"
	"errors"
	"math"
	"testing"

	"dfpc/internal/faults"
	"dfpc/internal/obs"
)

func TestPSIIdenticalIsZero(t *testing.T) {
	base := []float64{0.5, 0.3, 0.2}
	live := []int64{50, 30, 20}
	if got := PSI(base, live, 100); math.Abs(got) > 1e-9 {
		t.Errorf("PSI of identical distributions = %g, want ~0", got)
	}
	if got := PSI(base, nil, 0); got != 0 {
		t.Errorf("PSI with no live observations = %g, want 0", got)
	}
}

func TestPSIDetectsShift(t *testing.T) {
	base := []float64{0.5, 0.5}
	flipped := []int64{90, 10}
	got := PSI(base, flipped, 100)
	if got < 0.25 {
		t.Errorf("PSI of a 50/50 -> 90/10 shift = %g, want > 0.25 (significant)", got)
	}
	mild := []int64{55, 45}
	if m := PSI(base, mild, 100); m >= got || m < 0 {
		t.Errorf("mild shift PSI = %g, want in (0, %g)", m, got)
	}
}

func TestPSIBinary(t *testing.T) {
	if got := PSIBinary(0.3, 0.3); math.Abs(got) > 1e-9 {
		t.Errorf("PSIBinary(0.3, 0.3) = %g, want ~0", got)
	}
	if got := PSIBinary(0.1, 0.9); got < 0.25 {
		t.Errorf("PSIBinary(0.1, 0.9) = %g, want large", got)
	}
	// Zero rates must stay finite through the smoothing floor.
	if got := PSIBinary(0, 0.5); math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("PSIBinary(0, 0.5) = %g, want finite", got)
	}
}

func TestChiSquare(t *testing.T) {
	// Observed 60/40 vs expected 50/50 over n=100:
	// (60-50)^2/50 + (40-50)^2/50 = 4.
	stat, df := ChiSquare([]int64{60, 40}, []float64{0.5, 0.5})
	if math.Abs(stat-4) > 1e-9 || df != 1 {
		t.Errorf("ChiSquare = (%g, %d), want (4, 1)", stat, df)
	}
	if stat, df := ChiSquare([]int64{0, 0}, []float64{0.5, 0.5}); stat != 0 || df != 0 {
		t.Errorf("empty observation ChiSquare = (%g, %d), want (0, 0)", stat, df)
	}
}

func TestChiSquarePValue(t *testing.T) {
	// chi2(1) critical value 3.84 <-> p 0.05; Wilson-Hilferty is an
	// approximation, so allow a loose band.
	p := ChiSquarePValue(3.84, 1)
	if p < 0.02 || p > 0.09 {
		t.Errorf("p(3.84, df=1) = %g, want ~0.05", p)
	}
	if p := ChiSquarePValue(0, 1); p != 1 {
		t.Errorf("p(0, df=1) = %g, want 1", p)
	}
	if p := ChiSquarePValue(100, 1); p > 1e-6 {
		t.Errorf("p(100, df=1) = %g, want ~0", p)
	}
	if p := ChiSquarePValue(5, 0); p != 1 {
		t.Errorf("p with df=0 = %g, want 1", p)
	}
}

func TestConfMicro(t *testing.T) {
	if got := ConfMicro(1.5); got != 1_500_000 {
		t.Errorf("ConfMicro(1.5) = %d, want 1500000", got)
	}
	if got := ConfMicro(-0.5); got != 0 {
		t.Errorf("ConfMicro(-0.5) = %d, want 0", got)
	}
}

func TestSketchWindowAdvance(t *testing.T) {
	s := NewSketch(4, 2, 2, 1)
	advances := 0
	for i := 0; i < 8; i++ {
		s.MarkFire(0)
		if s.Observe(i%2, 3, 0, false, false) {
			advances++
		}
	}
	if advances != 2 {
		t.Errorf("8 observations at window size 4: %d advances, want 2", advances)
	}
	if s.Total() != 8 || s.Advanced() != 2 {
		t.Errorf("Total/Advanced = %d/%d, want 8/2", s.Total(), s.Advanced())
	}
	classes := make([]int64, 2)
	fire := make([]int64, 1)
	conf := make([]int64, obs.NumHistBuckets)
	density := make([]int64, obs.NumHistBuckets)
	n, _, _ := s.AggregateInto(classes, fire, conf, density)
	// Each advance resets the window it enters, so after the ring
	// wraps the aggregate holds the last full window (the first 4
	// observations were discarded when the ring came back around).
	if n != 4 {
		t.Errorf("ring aggregate n = %d, want 4 (oldest window discarded on wrap)", n)
	}
	if classes[0]+classes[1] != 4 || fire[0] != 4 {
		t.Errorf("aggregate classes=%v fire=%v, want sums 4/4", classes, fire)
	}
}

func TestSketchRingDiscardsOldest(t *testing.T) {
	s := NewSketch(2, 2, 1, 0)
	for i := 0; i < 6; i++ {
		s.Observe(0, 1, 0, false, false)
	}
	classes := make([]int64, 1)
	conf := make([]int64, obs.NumHistBuckets)
	density := make([]int64, obs.NumHistBuckets)
	n, _, _ := s.AggregateInto(classes, nil, conf, density)
	// Capacity is 4; after 6 observations the ring holds at most 4
	// (2 full windows; the current one was just reset).
	if n > 4 {
		t.Errorf("ring retains %d observations, capacity is %d", n, s.Capacity())
	}
	if s.Total() != 6 {
		t.Errorf("Total = %d, want 6 (lifetime count keeps growing)", s.Total())
	}
}

func TestSketchNilSafe(t *testing.T) {
	var s *Sketch
	s.MarkFire(0)
	if s.Observe(0, 1, 0, false, false) {
		t.Error("nil sketch Observe returned true")
	}
	if s.Total() != 0 || s.Advanced() != 0 || s.Capacity() != 0 {
		t.Error("nil sketch accessors not zero")
	}
	if snap := s.Snapshot(); snap.Total != 0 {
		t.Error("nil sketch Snapshot not zero")
	}
	n, _, _ := s.AggregateInto(nil, nil, nil, nil)
	if n != 0 {
		t.Error("nil sketch AggregateInto not zero")
	}
}

func testBaseline() *Baseline {
	return &Baseline{
		Rows:        100,
		NumClasses:  2,
		Priors:      []float64{0.5, 0.5},
		PredMix:     []float64{0.5, 0.5},
		FireRate:    []float64{0.4, 0.1},
		ConfHist:    mkHist(map[int]int64{20: 50, 21: 50}),
		DensityHist: mkHist(map[int]int64{3: 100}),
		HasConf:     true,
		LowConfCut:  500_000,
		LowConfRate: 0.1,
	}
}

func mkHist(buckets map[int]int64) []int64 {
	h := make([]int64, obs.NumHistBuckets)
	for i, c := range buckets {
		h[i] = c
	}
	return h
}

func TestBaselineNilSafe(t *testing.T) {
	var b *Baseline
	if b.Valid() || b.NumPatterns() != 0 || b.Classes() != 0 {
		t.Error("nil baseline accessors not zero")
	}
	if !testBaseline().Valid() {
		t.Error("populated baseline not Valid")
	}
}

func TestTrackerObserveAndReport(t *testing.T) {
	tr := NewTracker(TrackerConfig{WindowSize: 4, Windows: 4, WarnPSI: 0.05})
	tr.Bind(testBaseline())
	if !tr.Bound() {
		t.Fatal("tracker not bound")
	}
	// Feed a heavily shifted stream: always class 1, pattern 0 never
	// fires (baseline 0.4), confidence far below the cut.
	fv := []int32{1, 2, 11} // numItems=10: pattern index 1 fires
	for i := 0; i < 16; i++ {
		tr.ObserveRow(1, 100, true, fv, 10)
	}
	if tr.Warnings() == 0 {
		t.Error("shifted stream crossed no WarnPSI windows")
	}
	rep, err := tr.Report()
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if !rep.Bound || rep.Predictions != 16 || rep.BaselineRows != 100 {
		t.Errorf("report header = %+v", rep)
	}
	if len(rep.Dimensions) != 5 {
		t.Fatalf("report has %d dimensions, want 5", len(rep.Dimensions))
	}
	order := []string{DimClassMix, DimPatternFire, DimConfidence, DimDensity, DimLowConf}
	for i, d := range rep.Dimensions {
		if d.Name != order[i] {
			t.Errorf("dimension %d = %q, want %q", i, d.Name, order[i])
		}
	}
	if rep.MaxPSI < 0.25 {
		t.Errorf("MaxPSI = %g, want significant (> 0.25)", rep.MaxPSI)
	}
	if rep.Dimensions[0].PSI <= 0 {
		t.Errorf("class_mix PSI = %g, want > 0 (all-class-1 stream vs 50/50)", rep.Dimensions[0].PSI)
	}
	// Pattern 1 drifted 0.1 -> 1.0 (every row fires it), pattern 0
	// drifted 0.4 -> 0; both must appear, worst first.
	if len(rep.TopPatterns) != 2 || rep.TopPatterns[0].Index != 1 || rep.TopPatterns[1].Index != 0 {
		t.Errorf("top patterns = %+v, want [pattern 1, pattern 0]", rep.TopPatterns)
	}
	if rep.TopPatterns[0].PSI < rep.TopPatterns[1].PSI {
		t.Error("top patterns not PSI-descending")
	}
	if rep.LowConfLive <= rep.LowConfBase {
		t.Errorf("low-conf live %g <= base %g, want higher (all rows below cut)", rep.LowConfLive, rep.LowConfBase)
	}
}

func TestTrackerReportDeterministicBytes(t *testing.T) {
	mk := func() []byte {
		tr := NewTracker(TrackerConfig{WindowSize: 4, Windows: 4})
		tr.Bind(testBaseline())
		for i := 0; i < 10; i++ {
			tr.ObserveRow(i%2, int64(400_000+i), true, []int32{1, 10}, 10)
		}
		rep, err := tr.Report()
		if err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := mk(), mk()
	if string(a) != string(b) {
		t.Errorf("identical streams produced different report bytes:\n%s\n%s", a, b)
	}
}

func TestTrackerUnboundAndNil(t *testing.T) {
	var nilT *Tracker
	nilT.ObserveRow(0, 0, false, nil, 0)
	nilT.Bind(testBaseline())
	nilT.SetFaults(nil)
	if nilT.Bound() || nilT.Warnings() != 0 {
		t.Error("nil tracker state not zero")
	}
	rep, err := nilT.Report()
	if rep != nil || err != nil {
		t.Errorf("nil tracker Report = (%v, %v), want (nil, nil)", rep, err)
	}

	tr := NewTracker(TrackerConfig{})
	tr.ObserveRow(0, 0, false, nil, 0) // unbound: dropped, no panic
	rep, err = tr.Report()
	if err != nil {
		t.Fatalf("unbound Report: %v", err)
	}
	if rep.Bound {
		t.Error("unbound tracker reports Bound")
	}
	// Binding an invalid baseline stays unbound.
	tr.Bind(&Baseline{})
	if tr.Bound() {
		t.Error("invalid baseline bound")
	}
}

func TestTrackerFirstBaselineWins(t *testing.T) {
	tr := NewTracker(TrackerConfig{WindowSize: 4})
	first := testBaseline()
	tr.Bind(first)
	second := testBaseline()
	second.Rows = 999
	tr.Bind(second)
	rep, err := tr.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineRows != 100 {
		t.Errorf("BaselineRows = %d, want the first bind's 100", rep.BaselineRows)
	}
}

func TestTrackerReportFaultInjection(t *testing.T) {
	r := faults.New(1)
	r.Arm(faults.ModelobsSnapshot, 1, faults.ErrInjected)
	tr := NewTracker(TrackerConfig{})
	tr.SetFaults(r)
	tr.Bind(testBaseline())
	if _, err := tr.Report(); !errors.Is(err, faults.ErrInjected) {
		t.Errorf("armed Report error = %v, want ErrInjected", err)
	}
	// The next hit passes.
	if _, err := tr.Report(); err != nil {
		t.Errorf("second Report after one-shot arm: %v", err)
	}
}

func TestTrackerGobTransparent(t *testing.T) {
	tr := NewTracker(TrackerConfig{})
	tr.Bind(testBaseline())
	buf, err := tr.GobEncode()
	if err != nil || buf != nil {
		t.Errorf("GobEncode = (%v, %v), want (nil, nil)", buf, err)
	}
	var nilT *Tracker
	if buf, err := nilT.GobEncode(); err != nil || buf != nil {
		t.Errorf("nil GobEncode = (%v, %v), want (nil, nil)", buf, err)
	}
	if err := tr.GobDecode(nil); err != nil {
		t.Errorf("GobDecode: %v", err)
	}
}

func TestTrackerGaugesPublished(t *testing.T) {
	o := obs.New()
	tr := NewTracker(TrackerConfig{WindowSize: 2, Windows: 2, Obs: o})
	tr.Bind(testBaseline())
	for i := 0; i < 4; i++ {
		tr.ObserveRow(1, 100, true, []int32{1}, 10)
	}
	rep := o.Report("test")
	if rep.Counters["drift.predictions"] != 4 {
		t.Errorf("drift.predictions = %d, want 4", rep.Counters["drift.predictions"])
	}
	if rep.Counters["drift.windows"] != 2 {
		t.Errorf("drift.windows = %d, want 2", rep.Counters["drift.windows"])
	}
	if _, ok := rep.Gauges["drift.psi.max"]; !ok {
		t.Error("drift.psi.max gauge not published")
	}
}
