// Package modelobs is the model-quality observability layer: it
// answers "is the fitted model still seeing the distribution it was
// trained on?", not "was Fit fast?". At Fit time core embeds a
// Baseline — class priors, predicted-class mix, per-pattern fire
// rates from the training coverage bitmaps, confidence and
// feature-density histograms — into the model artifact. At Predict
// time a Tracker streams every prediction into a deterministic
// sliding-window Sketch and scores live-vs-baseline divergence with
// PSI and chi-square per dimension.
//
// Determinism contract: nothing in this package reads a clock or a
// random source. The sliding window advances on prediction count, so
// a replayed prediction stream produces byte-identical sketch state
// and drift reports at any worker count (the `nondeterm` analyzer
// polices the Fit/Predict cones this package lives in).
package modelobs

import "math"

// psiEpsilon floors the proportions entering the PSI log ratio so an
// empty bucket on either side contributes a large-but-finite term
// instead of ±Inf. 1e-6 is the conventional floor for percent-scale
// PSI tables.
const psiEpsilon = 1e-6

// chiMinExpected drops cells whose expected count is effectively zero
// from the chi-square statistic; with the baseline proportion exactly
// zero the cell carries no information and would otherwise divide by
// zero.
const chiMinExpected = 1e-9

// PSI computes the population stability index between a baseline
// proportion vector and a live count vector over the same buckets:
// sum over buckets of (q-p)·ln(q/p) with q the live proportion.
// The conventional reading: < 0.1 stable, 0.1–0.25 moderate shift,
// > 0.25 significant shift. total is the live observation count;
// zero total returns 0 (no evidence of anything).
func PSI(baseProp []float64, live []int64, total int64) float64 {
	if total <= 0 {
		return 0
	}
	n := float64(total)
	s := 0.0
	for i, p := range baseProp {
		q := 0.0
		if i < len(live) {
			q = float64(live[i]) / n
		}
		if p < psiEpsilon {
			p = psiEpsilon
		}
		if q < psiEpsilon {
			q = psiEpsilon
		}
		s += (q - p) * math.Log(q/p)
	}
	return s
}

// PSIBinary is PSI over a two-bucket distribution {event, no-event}
// given the baseline and live event rates. It scores drift of a
// single rate (one pattern's fire rate, the low-confidence rate).
func PSIBinary(baseRate, liveRate float64) float64 {
	p, q := baseRate, liveRate
	if p < psiEpsilon {
		p = psiEpsilon
	}
	if q < psiEpsilon {
		q = psiEpsilon
	}
	s := (q - p) * math.Log(q/p)
	p, q = 1-baseRate, 1-liveRate
	if p < psiEpsilon {
		p = psiEpsilon
	}
	if q < psiEpsilon {
		q = psiEpsilon
	}
	return s + (q-p)*math.Log(q/p)
}

// ChiSquare computes Pearson's chi-square statistic of observed live
// counts against the expected baseline proportions, and the degrees
// of freedom (informative cells − 1). Cells whose expectation is
// effectively zero are skipped.
func ChiSquare(observed []int64, expectedProp []float64) (stat float64, df int) {
	var total int64
	for _, o := range observed {
		total += o
	}
	if total == 0 {
		return 0, 0
	}
	cells := 0
	for i, o := range observed {
		e := 0.0
		if i < len(expectedProp) {
			e = expectedProp[i] * float64(total)
		}
		if e < chiMinExpected {
			continue
		}
		d := float64(o) - e
		stat += d * d / e
		cells++
	}
	if cells > 0 {
		df = cells - 1
	}
	return stat, df
}

// ChiSquareBinary is the two-cell chi-square of a live event count
// against a baseline event rate.
func ChiSquareBinary(events, total int64, baseRate float64) (stat float64, df int) {
	if total == 0 {
		return 0, 0
	}
	e1 := baseRate * float64(total)
	e0 := (1 - baseRate) * float64(total)
	if e1 < chiMinExpected || e0 < chiMinExpected {
		return 0, 0
	}
	d1 := float64(events) - e1
	d0 := float64(total-events) - e0
	return d1*d1/e1 + d0*d0/e0, 1
}

// ChiSquarePValue approximates P(X²(df) > stat) with the
// Wilson–Hilferty cube-root normal transform — accurate to a few
// percent for df ≥ 1, which is plenty for a drift dashboard.
func ChiSquarePValue(stat float64, df int) float64 {
	if df <= 0 {
		return 1
	}
	if stat <= 0 {
		return 1
	}
	k := float64(df)
	mu := 1 - 2/(9*k)
	sigma := math.Sqrt(2 / (9 * k))
	z := (math.Cbrt(stat/k) - mu) / sigma
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// ConfMicro converts a learner confidence (SVM margin, C4.5 leaf
// purity) to micro-units so it can land in the int64 log2 histogram
// buckets the obs package uses everywhere else: int64(conf × 1e6).
// Negative confidences clamp to 0 (bucket 0).
func ConfMicro(conf float64) int64 {
	if conf <= 0 {
		return 0
	}
	return int64(conf * 1e6)
}
