package modelobs

import "dfpc/internal/obs"

// Sketch is a deterministic sliding window over the prediction
// stream: a fixed-width ring of windowed counters. A window holds
// exactly windowSize predictions; when it fills, the ring advances
// and the oldest window is discarded. The advance is driven purely
// by prediction count — no wall clocks — so replaying the same
// stream reproduces the same state bit for bit.
//
// Every slice is allocated once at construction; Observe and
// MarkFire never allocate (the Predict hot path runs them per row).
// Aggregated over the whole ring the counters are order-insensitive,
// so for streams no longer than Capacity the aggregate is invariant
// to how a parallel harness interleaved the rows.
type Sketch struct {
	windowSize  int
	numClasses  int
	numPatterns int
	windows     []window
	cur         int
	total       int64 // lifetime observations
	advanced    int64 // completed-window rotations
}

// window is one slot of the ring.
type window struct {
	n       int64
	classes []int64
	fire    []int64
	conf    []int64 // log2 buckets of confidence micro-units
	density []int64 // log2 buckets of feature-vector length
	hasConf int64   // observations that carried a confidence
	lowConf int64   // observations at or below the baseline cut
}

func (w *window) reset() {
	w.n, w.hasConf, w.lowConf = 0, 0, 0
	clearInt64(w.classes)
	clearInt64(w.fire)
	clearInt64(w.conf)
	clearInt64(w.density)
}

func clearInt64(s []int64) {
	for i := range s {
		s[i] = 0
	}
}

// NewSketch builds a ring of windows predictions each covering
// windowSize observations over numClasses classes and numPatterns
// pattern features. windowSize and windows fall back to the package
// defaults (256 × 16) when non-positive.
func NewSketch(windowSize, windows, numClasses, numPatterns int) *Sketch {
	if windowSize <= 0 {
		windowSize = DefaultWindowSize
	}
	if windows <= 0 {
		windows = DefaultWindows
	}
	s := &Sketch{
		windowSize:  windowSize,
		numClasses:  numClasses,
		numPatterns: numPatterns,
		windows:     make([]window, windows),
	}
	// One backing array sliced across the ring: construction stays a
	// fixed two allocations however wide the ring is, and the windows'
	// counters end up contiguous for the aggregate scan.
	stride := numClasses + numPatterns + 2*obs.NumHistBuckets
	backing := make([]int64, windows*stride)
	for i := range s.windows {
		chunk := backing[i*stride : (i+1)*stride]
		s.windows[i] = window{
			classes: chunk[:numClasses:numClasses],
			fire:    chunk[numClasses : numClasses+numPatterns : numClasses+numPatterns],
			conf:    chunk[numClasses+numPatterns : stride-obs.NumHistBuckets : stride-obs.NumHistBuckets],
			density: chunk[stride-obs.NumHistBuckets : stride:stride],
		}
	}
	return s
}

// MarkFire records that pattern feature j fired on the observation
// about to be recorded with Observe. Out-of-range indices are
// ignored. Nil-safe, allocation-free.
func (s *Sketch) MarkFire(j int) {
	if s == nil || j < 0 || j >= s.numPatterns {
		return
	}
	s.windows[s.cur].fire[j]++
}

// Observe records one prediction into the current window and reports
// whether the window filled and the ring advanced (the caller
// re-scores drift on that edge). Nil-safe, allocation-free.
func (s *Sketch) Observe(class, density int, confMicro int64, hasConf, lowConf bool) bool {
	if s == nil || class < 0 || class >= s.numClasses {
		return false
	}
	w := &s.windows[s.cur]
	w.classes[class]++
	w.density[obs.BucketIndex(int64(density))]++
	if hasConf {
		w.hasConf++
		w.conf[obs.BucketIndex(confMicro)]++
		if lowConf {
			w.lowConf++
		}
	}
	w.n++
	s.total++
	if w.n < int64(s.windowSize) {
		return false
	}
	s.advanced++
	s.cur = (s.cur + 1) % len(s.windows)
	s.windows[s.cur].reset()
	return true
}

// AggregateInto sums the ring into the caller-owned buffers (each
// must be at least numClasses / numPatterns / obs.NumHistBuckets
// long; the caller zeroes them) and returns the observation,
// with-confidence, and low-confidence totals. Allocation-free so the
// window-boundary re-score can run inside the Predict hot path.
// Nil-safe.
func (s *Sketch) AggregateInto(classes, fire, conf, density []int64) (n, hasConf, lowConf int64) {
	if s == nil {
		return 0, 0, 0
	}
	for i := range s.windows {
		w := &s.windows[i]
		n += w.n
		hasConf += w.hasConf
		lowConf += w.lowConf
		for j, c := range w.classes {
			classes[j] += c
		}
		for j, c := range w.fire {
			fire[j] += c
		}
		for j, c := range w.conf {
			conf[j] += c
		}
		for j, c := range w.density {
			density[j] += c
		}
	}
	return n, hasConf, lowConf
}

// Total returns the lifetime observation count. Nil-safe.
func (s *Sketch) Total() int64 {
	if s == nil {
		return 0
	}
	return s.total
}

// Advanced returns how many windows have completed. Nil-safe.
func (s *Sketch) Advanced() int64 {
	if s == nil {
		return 0
	}
	return s.advanced
}

// Capacity returns the maximum observations the ring retains at
// once (windowSize × windows). Nil-safe.
func (s *Sketch) Capacity() int {
	if s == nil {
		return 0
	}
	return s.windowSize * len(s.windows)
}

// SketchSnapshot is the exported aggregate of a Sketch's ring, used
// by the determinism suite to pin sketch state byte-identical across
// worker counts (gob-encode it and compare).
type SketchSnapshot struct {
	Total      int64
	Advanced   int64
	WindowSize int
	Windows    int
	Classes    []int64
	Fire       []int64
	Conf       []int64
	Density    []int64
	HasConf    int64
	LowConf    int64
}

// Snapshot aggregates the ring into an exported, comparable value.
// Cold path (debug endpoints and tests); allocates. Nil-safe.
func (s *Sketch) Snapshot() SketchSnapshot {
	if s == nil {
		return SketchSnapshot{}
	}
	snap := SketchSnapshot{
		Total:      s.total,
		Advanced:   s.advanced,
		WindowSize: s.windowSize,
		Windows:    len(s.windows),
		Classes:    make([]int64, s.numClasses),
		Fire:       make([]int64, s.numPatterns),
		Conf:       make([]int64, obs.NumHistBuckets),
		Density:    make([]int64, obs.NumHistBuckets),
	}
	_, hc, lc := s.AggregateInto(snap.Classes, snap.Fire, snap.Conf, snap.Density)
	snap.HasConf, snap.LowConf = hc, lc
	return snap
}
