package modelobs

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"sync"

	"dfpc/internal/faults"
	"dfpc/internal/obs"
)

// Defaults for the sliding-window sketch: 16 windows of 256
// predictions retain the last 4096 predictions.
const (
	DefaultWindowSize = 256
	DefaultWindows    = 16
)

// topPatternLimit caps how many drifting patterns a DriftReport
// lists.
const topPatternLimit = 10

// Drift dimension names, in the fixed order reports emit them.
const (
	DimClassMix    = "class_mix"
	DimPatternFire = "pattern_fire"
	DimConfidence  = "confidence"
	DimDensity     = "density"
	DimLowConf     = "low_conf"
)

const numDims = 5

// TrackerConfig configures a Tracker.
type TrackerConfig struct {
	// WindowSize is the predictions per sketch window (0 =
	// DefaultWindowSize).
	WindowSize int
	// Windows is the ring width (0 = DefaultWindows).
	Windows int
	// WarnPSI, when > 0, logs WARN and bumps the drift.warnings
	// counter whenever the max per-dimension PSI crosses it at a
	// window boundary.
	WarnPSI float64
	// Obs, when non-nil, receives the dfpc_drift_* gauges and
	// counters. Nil disables recording.
	Obs *obs.Observer
	// Log, when non-nil, receives the WarnPSI threshold WARNs.
	Log *slog.Logger
}

// DimScore is one dimension's live-vs-baseline divergence.
type DimScore struct {
	Name   string  `json:"name"`
	PSI    float64 `json:"psi"`
	Chi2   float64 `json:"chi2"`
	DF     int     `json:"df"`
	PValue float64 `json:"p_value"`
}

// PatternDrift is one pattern feature's fire-rate drift.
type PatternDrift struct {
	// Index is the pattern's position in the selected-feature list
	// (feature ID = numItems + Index).
	Index    int     `json:"index"`
	BaseRate float64 `json:"base_rate"`
	LiveRate float64 `json:"live_rate"`
	PSI      float64 `json:"psi"`
}

// DriftReport is the full live-vs-baseline divergence picture: the
// /drift endpoint's payload and the journal `drift` record. Field
// order is fixed and there are no maps or timestamps, so identical
// tracker state marshals to identical bytes.
type DriftReport struct {
	// Bound reports whether a baseline has been attached; all other
	// fields are zero until the first tracked Predict call.
	Bound bool `json:"bound"`
	// BaselineRows is the training-row count behind the baseline.
	BaselineRows int `json:"baseline_rows"`
	// Predictions is the lifetime tracked-prediction count;
	// WindowSize/Windows/Advanced describe the sketch ring.
	Predictions int64 `json:"predictions"`
	WindowSize  int   `json:"window_size"`
	Windows     int   `json:"windows"`
	Advanced    int64 `json:"advanced"`
	// WarnPSI and Warnings mirror the -drift-warn threshold state.
	WarnPSI  float64 `json:"warn_psi,omitempty"`
	Warnings int64   `json:"warnings"`
	// MaxPSI is the worst per-dimension PSI; Dimensions lists all
	// five in fixed order (class_mix, pattern_fire, confidence,
	// density, low_conf).
	MaxPSI     float64    `json:"max_psi"`
	Dimensions []DimScore `json:"dimensions"`
	// ClassMixBase/Live expose the class-mix proportions behind the
	// first dimension (the one operators ask about first).
	ClassMixBase []float64 `json:"class_mix_base,omitempty"`
	ClassMixLive []float64 `json:"class_mix_live,omitempty"`
	// LowConfRate is the live low-confidence rate vs the baseline's.
	LowConfBase float64 `json:"low_conf_base,omitempty"`
	LowConfLive float64 `json:"low_conf_live,omitempty"`
	// TopPatterns lists the most-drifted pattern fire rates, PSI
	// descending then index ascending, capped at 10.
	TopPatterns []PatternDrift `json:"top_patterns,omitempty"`
}

// Tracker streams predictions into a Sketch bound to a Baseline and
// re-scores divergence at every window boundary. All methods are
// nil-safe — a nil *Tracker is the disabled state and costs one
// pointer compare in the hot path. A single Tracker is safe for
// concurrent use; CV folds share one tracker (the first fitted
// fold's baseline wins) so a cross-validated run reports one drift
// stream.
type Tracker struct {
	mu     sync.Mutex
	cfg    TrackerConfig
	faults *faults.Registry

	base   *Baseline
	sketch *Sketch

	// Precomputed at Bind so the hot path never normalizes.
	baseConfProp    []float64
	baseDensityProp []float64

	// Aggregation scratch reused at every window boundary.
	aggClasses []int64
	aggFire    []int64
	aggConf    []int64
	aggDensity []int64
	liveMix    []float64

	scores     [numDims]DimScore
	maxPSI     float64
	warnings   int64
	aggN       int64 // totals behind the last scoreLocked pass
	aggHasConf int64
	aggLowConf int64

	// Telemetry handles resolved once at Bind (obs types are
	// nil-safe, so these work unregistered too).
	gClassMix, gPatternFire, gConfidence *obs.Gauge
	gDensity, gLowConf, gMax             *obs.Gauge
	cWindows, cPredictions, cWarnings    *obs.Counter
}

// NewTracker builds a drift tracker. The sketch is allocated lazily
// at Bind, when the baseline's class and pattern arities are known.
func NewTracker(cfg TrackerConfig) *Tracker {
	if cfg.WindowSize <= 0 {
		cfg.WindowSize = DefaultWindowSize
	}
	if cfg.Windows <= 0 {
		cfg.Windows = DefaultWindows
	}
	return &Tracker{cfg: cfg}
}

// SetFaults wires the fault-injection registry; Report passes
// through the modelobs.snapshot point. Nil-safe.
func (t *Tracker) SetFaults(r *faults.Registry) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.faults = r
	t.mu.Unlock()
}

// Bind attaches the baseline the live stream is compared against and
// allocates the sketch. The first baseline wins: CV folds share one
// tracker and must all score against the same reference. Nil-safe
// (nil tracker or nil baseline is a no-op).
func (t *Tracker) Bind(b *Baseline) {
	if t == nil || !b.Valid() {
		return
	}
	t.mu.Lock()
	if t.base == nil {
		t.bindLocked(b)
	}
	t.mu.Unlock()
}

func (t *Tracker) bindLocked(b *Baseline) {
	t.base = b
	t.sketch = NewSketch(t.cfg.WindowSize, t.cfg.Windows, b.NumClasses, len(b.FireRate))
	t.baseConfProp = proportions(b.ConfHist)
	t.baseDensityProp = proportions(b.DensityHist)
	t.aggClasses = make([]int64, b.NumClasses)
	t.aggFire = make([]int64, len(b.FireRate))
	t.aggConf = make([]int64, obs.NumHistBuckets)
	t.aggDensity = make([]int64, obs.NumHistBuckets)
	t.liveMix = make([]float64, b.NumClasses)
	o := t.cfg.Obs
	t.gClassMix = o.Gauge("drift.psi.class_mix")
	t.gPatternFire = o.Gauge("drift.psi.pattern_fire")
	t.gConfidence = o.Gauge("drift.psi.confidence")
	t.gDensity = o.Gauge("drift.psi.density")
	t.gLowConf = o.Gauge("drift.psi.low_conf")
	t.gMax = o.Gauge("drift.psi.max")
	t.cWindows = o.Counter("drift.windows")
	t.cPredictions = o.Counter("drift.predictions")
	t.cWarnings = o.Counter("drift.warnings")
}

// Bound reports whether a baseline is attached. Nil-safe.
func (t *Tracker) Bound() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.base != nil
}

// ObserveRow records one prediction: its class, confidence
// (micro-units; hasConf false for learners without one), and the
// row's feature vector (fv) whose tail ≥ numItems holds the fired
// pattern features. Allocation-free; called per row from the Predict
// hot path. Nil-safe.
func (t *Tracker) ObserveRow(class int, confMicro int64, hasConf bool, fv []int32, numItems int32) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.base == nil {
		t.mu.Unlock()
		return
	}
	for j := len(fv) - 1; j >= 0 && fv[j] >= numItems; j-- {
		t.sketch.MarkFire(int(fv[j] - numItems))
	}
	low := hasConf && t.base.HasConf && confMicro <= t.base.LowConfCut
	t.cPredictions.Inc()
	if t.sketch.Observe(class, len(fv), confMicro, hasConf, low) {
		t.advanceLocked()
	}
	t.mu.Unlock()
}

// advanceLocked re-scores drift over the whole ring at a window
// boundary and publishes gauges; amortized once per WindowSize
// predictions. Caller holds t.mu.
func (t *Tracker) advanceLocked() {
	t.scoreLocked()
	t.gClassMix.Set(t.scores[0].PSI)
	t.gPatternFire.Set(t.scores[1].PSI)
	t.gConfidence.Set(t.scores[2].PSI)
	t.gDensity.Set(t.scores[3].PSI)
	t.gLowConf.Set(t.scores[4].PSI)
	t.gMax.Set(t.maxPSI)
	t.cWindows.Inc()
	if t.cfg.WarnPSI > 0 && t.maxPSI > t.cfg.WarnPSI {
		t.warnings++
		t.cWarnings.Inc()
		if t.cfg.Log != nil {
			t.cfg.Log.LogAttrs(context.Background(), slog.LevelWarn,
				"drift: live distribution diverges from training baseline",
				slog.Float64("max_psi", t.maxPSI),
				slog.Float64("threshold", t.cfg.WarnPSI),
				slog.Int64("predictions", t.sketch.Total()))
		}
	}
}

// scoreLocked recomputes all five dimension scores from the ring
// aggregate. Allocation-free: every buffer was sized at Bind.
// Caller holds t.mu.
func (t *Tracker) scoreLocked() {
	clearInt64(t.aggClasses)
	clearInt64(t.aggFire)
	clearInt64(t.aggConf)
	clearInt64(t.aggDensity)
	n, hasConf, lowConf := t.sketch.AggregateInto(t.aggClasses, t.aggFire, t.aggConf, t.aggDensity)
	t.aggN, t.aggHasConf, t.aggLowConf = n, hasConf, lowConf

	// class_mix: live predicted-class distribution vs the baseline's
	// training-time predicted mix.
	s := &t.scores[0]
	s.Name = DimClassMix
	s.PSI = PSI(t.base.PredMix, t.aggClasses, n)
	s.Chi2, s.DF = ChiSquare(t.aggClasses, t.base.PredMix)
	s.PValue = ChiSquarePValue(s.Chi2, s.DF)

	// pattern_fire: worst single pattern's fire-rate drift.
	s = &t.scores[1]
	s.Name = DimPatternFire
	s.PSI, s.Chi2, s.DF = 0, 0, 0
	worst := -1
	for j, base := range t.base.FireRate {
		if n == 0 {
			break
		}
		live := float64(t.aggFire[j]) / float64(n)
		if p := PSIBinary(base, live); p > s.PSI {
			s.PSI = p
			worst = j
		}
	}
	if worst >= 0 {
		s.Chi2, s.DF = ChiSquareBinary(t.aggFire[worst], n, t.base.FireRate[worst])
	}
	s.PValue = ChiSquarePValue(s.Chi2, s.DF)

	// confidence: live margin/leaf-purity distribution vs training.
	s = &t.scores[2]
	s.Name = DimConfidence
	s.PSI, s.Chi2, s.DF = 0, 0, 0
	if t.base.HasConf && t.baseConfProp != nil {
		s.PSI = PSI(t.baseConfProp, t.aggConf, hasConf)
		s.Chi2, s.DF = ChiSquare(t.aggConf, t.baseConfProp)
	}
	s.PValue = ChiSquarePValue(s.Chi2, s.DF)

	// density: feature-vector length distribution.
	s = &t.scores[3]
	s.Name = DimDensity
	s.PSI, s.Chi2, s.DF = 0, 0, 0
	if t.baseDensityProp != nil {
		s.PSI = PSI(t.baseDensityProp, t.aggDensity, n)
		s.Chi2, s.DF = ChiSquare(t.aggDensity, t.baseDensityProp)
	}
	s.PValue = ChiSquarePValue(s.Chi2, s.DF)

	// low_conf: abstain/low-confidence rate vs the baseline's p10.
	s = &t.scores[4]
	s.Name = DimLowConf
	s.PSI, s.Chi2, s.DF = 0, 0, 0
	if t.base.HasConf && hasConf > 0 {
		live := float64(lowConf) / float64(hasConf)
		s.PSI = PSIBinary(t.base.LowConfRate, live)
		s.Chi2, s.DF = ChiSquareBinary(lowConf, hasConf, t.base.LowConfRate)
	}
	s.PValue = ChiSquarePValue(s.Chi2, s.DF)

	t.maxPSI = 0
	for i := range t.scores {
		if t.scores[i].PSI > t.maxPSI {
			t.maxPSI = t.scores[i].PSI
		}
	}
}

// Warnings returns how many window boundaries crossed the WarnPSI
// threshold. Nil-safe.
func (t *Tracker) Warnings() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.warnings
}

// SketchSnapshot exposes the live sketch aggregate for the
// determinism suite. Nil-safe.
func (t *Tracker) SketchSnapshot() SketchSnapshot {
	if t == nil {
		return SketchSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sketch.Snapshot()
}

// Report re-scores drift over the current ring (including the
// partial window) and returns the full divergence picture. It
// passes through the modelobs.snapshot fault point. A nil tracker
// returns (nil, nil) — drift tracking disabled. Cold path.
func (t *Tracker) Report() (*DriftReport, error) {
	if t == nil {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.faults.Hit(faults.ModelobsSnapshot); err != nil {
		return nil, fmt.Errorf("modelobs: snapshot: %w", err)
	}
	rep := &DriftReport{
		WarnPSI:  t.cfg.WarnPSI,
		Warnings: t.warnings,
	}
	if t.base == nil {
		return rep, nil
	}
	t.scoreLocked()
	rep.Bound = true
	rep.BaselineRows = t.base.Rows
	rep.Predictions = t.sketch.Total()
	rep.WindowSize = t.cfg.WindowSize
	rep.Windows = t.cfg.Windows
	rep.Advanced = t.sketch.Advanced()
	rep.MaxPSI = t.maxPSI
	rep.Dimensions = make([]DimScore, numDims)
	copy(rep.Dimensions, t.scores[:])

	rep.ClassMixBase = append([]float64(nil), t.base.PredMix...)
	rep.ClassMixLive = make([]float64, len(t.aggClasses))
	if t.aggN > 0 {
		for i, c := range t.aggClasses {
			rep.ClassMixLive[i] = float64(c) / float64(t.aggN)
		}
	}
	rep.LowConfBase = t.base.LowConfRate
	if t.base.HasConf && t.aggHasConf > 0 {
		rep.LowConfLive = float64(t.aggLowConf) / float64(t.aggHasConf)
	}
	rep.TopPatterns = t.topPatternsLocked(t.aggN)
	return rep, nil
}

// topPatternsLocked ranks pattern fire-rate drift PSI-descending
// (ties index-ascending) over the current aggregate. Caller holds
// t.mu and has just run scoreLocked (aggFire is fresh).
func (t *Tracker) topPatternsLocked(n int64) []PatternDrift {
	if n == 0 || len(t.base.FireRate) == 0 {
		return nil
	}
	all := make([]PatternDrift, len(t.base.FireRate))
	for j, base := range t.base.FireRate {
		live := float64(t.aggFire[j]) / float64(n)
		all[j] = PatternDrift{Index: j, BaseRate: base, LiveRate: live, PSI: PSIBinary(base, live)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].PSI > all[j].PSI {
			return true
		}
		if all[i].PSI < all[j].PSI {
			return false
		}
		return all[i].Index < all[j].Index
	})
	if len(all) > topPatternLimit {
		all = all[:topPatternLimit]
	}
	return all
}

// GobEncode makes a Tracker transparent to gob: a tracker is live
// telemetry state, never part of a model artifact (mirrors
// faults.Registry). Nil-safe.
func (t *Tracker) GobEncode() ([]byte, error) {
	if t == nil {
		return nil, nil
	}
	return nil, nil
}

// GobDecode restores nothing, leaving the tracker zero. Nil-safe.
func (t *Tracker) GobDecode([]byte) error {
	return nil
}
