package dfpc

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"dfpc/internal/dataset"
)

func TestPublicEndToEnd(t *testing.T) {
	d, err := Generate("labor", 3)
	if err != nil {
		t.Fatal(err)
	}
	clf := NewClassifier(PatFS, SVM, WithMinSupport(0.3), WithCoverage(2))
	res, err := CrossValidate(clf, d, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean <= 0.4 || res.Mean > 1 {
		t.Fatalf("accuracy = %v, implausible", res.Mean)
	}
}

func TestAllFamilyLearnerCombos(t *testing.T) {
	d, err := Generate("zoo", 4)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := TrainTestSplit(d, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Family{ItemAll, ItemFS, ItemRBF, PatAll, PatFS} {
		for _, l := range []Learner{SVM, C45} {
			clf := NewClassifier(f, l, WithMinSupport(0.4))
			acc, err := Evaluate(clf, d, train, test)
			if err != nil {
				t.Fatalf("%v/%v: %v", f, l, err)
			}
			if acc < 0.2 {
				t.Fatalf("%v/%v: accuracy %v", f, l, acc)
			}
		}
	}
}

func TestCSVRoundTripThroughPublicAPI(t *testing.T) {
	d, err := Generate("labor", 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := LoadCSV(&buf, "labor-roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if d2.NumRows() != d.NumRows() || d2.NumClasses() != d.NumClasses() {
		t.Fatal("round trip changed shape")
	}
}

func TestDatasetNames(t *testing.T) {
	names := DatasetNames()
	if len(names) != 22 {
		t.Fatalf("names = %d, want 22", len(names))
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"austral", "chess", "waveform", "letter", "iris"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %q in %v", want, names)
		}
	}
}

func TestAnalyzeAndBounds(t *testing.T) {
	d, err := Generate("breast", 2)
	if err != nil {
		t.Fatal(err)
	}
	stats, classCounts, err := AnalyzePatterns(d, 0.2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 || len(classCounts) != 2 {
		t.Fatalf("stats=%d classes=%d", len(stats), len(classCounts))
	}
	curve := IGBoundCurve(classCounts)
	for _, s := range stats {
		if s.Support >= 1 && s.Support <= len(curve) {
			if s.InfoGain > curve[s.Support-1].Bound+1e-9 {
				t.Fatalf("IG %v above bound %v", s.InfoGain, curve[s.Support-1].Bound)
			}
		}
	}
	if len(FisherBoundCurve(classCounts)) == 0 {
		t.Fatal("empty Fisher curve")
	}
}

func TestMinSupportStrategyPublic(t *testing.T) {
	s, err := MinSupportForIG(0.1, 0.4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("s = %d", s)
	}
	// Consistency with the bound function.
	theta := float64(s) / 1000
	if IGUpperBound(theta, 0.4) > 0.1 {
		t.Fatal("strategy/bound inconsistency")
	}
	if _, err := MinSupportForFisher(0.5, 0.4, 100); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsApply(t *testing.T) {
	// Smoke: every option must compose without breaking the fit.
	d, err := Generate("labor", 5)
	if err != nil {
		t.Fatal(err)
	}
	clf := NewClassifier(PatFS, C45,
		WithMinSupport(0.35),
		WithIGThreshold(0.05),
		WithCoverage(2),
		WithFisherRelevance(),
		WithSVMC(2),
		WithRBFGamma(0.5),
		WithMaxPatternLen(3),
		WithMaxPatterns(10000),
		WithBins(3),
	)
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	if err := clf.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	if _, err := clf.Predict(d, rows[:5]); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if ItemAll.String() != "Item_All" || PatFS.String() != "Pat_FS" {
		t.Fatal("Family stringer wrong")
	}
	if SVM.String() != "SVM" || C45.String() != "C4.5" {
		t.Fatal("Learner stringer wrong")
	}
	if Family(99).String() == "" || Learner(99).String() == "" {
		t.Fatal("unknown stringer empty")
	}
}

// Failure-injection and robustness tests at the public API boundary.

func TestLoadCSVGarbage(t *testing.T) {
	for name, data := range map[string]string{
		"binary junk":   "\x00\x01\x02",
		"ragged":        "a,b,label\n1,2,x\n3,y\n",
		"quotes broken": "a,label\n\"unterminated,x\n",
		"header only":   "a,label\n",
	} {
		if _, err := LoadCSV(strings.NewReader(data), name); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestGenerateUnknownDataset(t *testing.T) {
	if _, err := Generate("not-a-dataset", 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestClassifierSingleClassTraining(t *testing.T) {
	// A degenerate training subset with one class must train and always
	// predict that class, not crash.
	csv := "a,label\n1,only\n2,only\n3,only\n4,only\n"
	d, err := LoadCSV(strings.NewReader(csv), "single")
	if err != nil {
		t.Fatal(err)
	}
	clf := NewClassifier(ItemAll, SVM)
	rows := []int{0, 1, 2, 3}
	if err := clf.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	pred, err := clf.Predict(d, rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pred {
		if p != 0 {
			t.Fatalf("predicted %d on single-class data", p)
		}
	}
}

func TestClassifierConstantColumn(t *testing.T) {
	// A constant attribute and an all-missing attribute must flow
	// through discretization, encoding, mining, and learning.
	csv := "const,missing,signal,label\n" +
		"k,?,1,a\nk,?,1,a\nk,?,1,a\nk,?,2,b\nk,?,2,b\nk,?,2,b\n" +
		"k,?,1,a\nk,?,1,a\nk,?,2,b\nk,?,2,b\n"
	d, err := LoadCSV(strings.NewReader(csv), "degenerate")
	if err != nil {
		t.Fatal(err)
	}
	clf := NewClassifier(PatFS, SVM, WithMinSupport(0.3))
	res, err := CrossValidate(clf, d, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean < 0.9 {
		t.Fatalf("accuracy %v on trivially separable data", res.Mean)
	}
}

func TestCompareAcrossClassifiers(t *testing.T) {
	d, err := Generate("heart", 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := CrossValidate(NewClassifier(PatFS, SVM, WithMinSupport(0.15)), d, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(NewClassifier(ItemAll, SVM), d, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.P < 0 || cmp.P > 1 {
		t.Fatalf("p = %v", cmp.P)
	}
	if cmp.MeanA <= cmp.MeanB {
		t.Fatalf("Pat_FS (%.3f) should beat Item_All (%.3f) on heart", cmp.MeanA, cmp.MeanB)
	}
}

func TestNBAndKNNLearnersPublic(t *testing.T) {
	d, err := Generate("labor", 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []Learner{NaiveBayes, KNN} {
		clf := NewClassifier(PatFS, l, WithMinSupport(0.3))
		res, err := CrossValidate(clf, d, 3, 1)
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if res.Mean < 0.4 {
			t.Fatalf("%v: accuracy %v", l, res.Mean)
		}
	}
}

func TestWithCGridPublic(t *testing.T) {
	d, err := Generate("labor", 2)
	if err != nil {
		t.Fatal(err)
	}
	clf := NewClassifier(PatFS, SVM, WithMinSupport(0.3), WithCGrid(0.5, 1, 2))
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	if err := clf.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	if c := clf.Stats.SelectedC; c != 0.5 && c != 1 && c != 2 {
		t.Fatalf("SelectedC = %v not in grid", c)
	}
}

func TestSaveLoadModelPublic(t *testing.T) {
	d, err := Generate("labor", 1)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := TrainTestSplit(d, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	clf := NewClassifier(PatFS, SVM, WithMinSupport(0.3))
	if err := clf.Fit(d, train); err != nil {
		t.Fatal(err)
	}
	want, err := clf.Predict(d, test)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, clf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Predict(d, test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prediction %d changed after save/load", i)
		}
	}
}

func TestLUCSThroughPipeline(t *testing.T) {
	// LUCS-KDD transactions flow through the whole framework: the
	// single-valued-attribute trick (absent item = missing cell) must
	// reproduce the transactions exactly and classify fine.
	var sb strings.Builder
	for i := 0; i < 30; i++ {
		if i%2 == 0 {
			sb.WriteString("1 3 9\n") // class item 9
		} else {
			sb.WriteString("2 4 10\n") // class item 10
		}
	}
	d, err := dataset.ReadLUCS(strings.NewReader(sb.String()), "lucs-demo")
	if err != nil {
		t.Fatal(err)
	}
	clf := NewClassifier(PatFS, SVM, WithMinSupport(0.5))
	res, err := CrossValidate(clf, d, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean < 0.99 {
		t.Fatalf("accuracy %v on separable LUCS data", res.Mean)
	}
}

func TestWithProbabilityPublic(t *testing.T) {
	d, err := Generate("labor", 1)
	if err != nil {
		t.Fatal(err)
	}
	clf := NewClassifier(PatFS, SVM, WithMinSupport(0.3), WithProbability())
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	if err := clf.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	probs, err := clf.PredictProb(d, rows[:5])
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range probs {
		sum := 0.0
		for _, v := range pr {
			if v < 0 || v > 1 {
				t.Fatalf("prob out of range: %v", pr)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("probs sum %v", sum)
		}
	}
}

func TestDiscretizationOptionsPublic(t *testing.T) {
	d, err := Generate("iris", 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, opt := range map[string]Option{
		"mdl":      WithMDLDiscretization(),
		"chimerge": WithChiMergeDiscretization(),
		"bins":     WithBins(4),
	} {
		clf := NewClassifier(PatFS, SVM, WithMinSupport(0.15), opt)
		res, err := CrossValidate(clf, d, 3, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Mean < 0.3 {
			t.Fatalf("%s: accuracy %v", name, res.Mean)
		}
	}
}

func TestLoadCSVFromTestdata(t *testing.T) {
	// The classic Quinlan "play tennis" weather data, as a committed
	// fixture exercising the real-file path.
	f, err := os.Open("testdata/weather.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := LoadCSV(f, "weather")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 14 || d.NumAttrs() != 4 || d.NumClasses() != 2 {
		t.Fatalf("shape (%d,%d,%d)", d.NumRows(), d.NumAttrs(), d.NumClasses())
	}
	clf := NewClassifier(PatFS, C45, WithMinSupport(0.3))
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	if err := clf.Fit(d, rows); err != nil {
		t.Fatal(err)
	}
	pred, err := clf.Predict(d, rows)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range pred {
		if pred[i] == d.Labels[i] {
			correct++
		}
	}
	if correct < 10 {
		t.Fatalf("training accuracy %d/14 too low", correct)
	}
}
