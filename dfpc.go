// Package dfpc is a Go implementation of discriminative frequent
// pattern analysis for classification (Cheng, Yan, Han & Hsu, ICDE
// 2007). It classifies categorical/numeric tabular data in the feature
// space of single features plus closed frequent patterns, selected by
// the MMRFS relevance/redundancy algorithm, and learned by an SVM or a
// C4.5 decision tree.
//
// The minimal workflow:
//
//	d, _ := dfpc.Generate("austral", 1)          // or dfpc.LoadCSV(r, "mydata")
//	clf := dfpc.NewClassifier(dfpc.PatFS, dfpc.SVM)
//	res, _ := dfpc.CrossValidate(clf, d, 10, 42)
//	fmt.Printf("accuracy %.2f%%\n", 100*res.Mean)
//
// The package also exposes the paper's analytical toolkit: information
// gain and Fisher score upper bounds as functions of pattern support,
// and the min_sup-setting strategy θ* = argmax_θ (IGub(θ) ≤ IG0).
package dfpc

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"time"

	"dfpc/internal/c45"
	"dfpc/internal/core"
	"dfpc/internal/datagen"
	"dfpc/internal/dataset"
	"dfpc/internal/discretize"
	"dfpc/internal/eval"
	"dfpc/internal/featsel"
	"dfpc/internal/guard"
	"dfpc/internal/measures"
	"dfpc/internal/mining"
	"dfpc/internal/obs"
	"dfpc/internal/parallel"
)

// Dataset is a labelled tabular dataset (categorical and/or numeric
// attributes plus a class label per row).
type Dataset = dataset.Dataset

// Attribute describes one dataset column.
type Attribute = dataset.Attribute

// CVResult summarizes a cross-validation run.
type CVResult = eval.CVResult

// CVOptions carries optional cross-validation behavior: observability
// hooks, per-fold progress, fold-failure isolation (ContinueOnError),
// and concurrent fold execution (Workers).
type CVOptions = eval.CVOptions

// Workers is the worker-count knob of CVOptions.Workers and the
// parallel regions behind WithWorkers: 0 means GOMAXPROCS, 1 means
// sequential, n means at most n goroutines. Any value yields identical
// results.
type Workers = parallel.Workers

// FoldError records one failed cross-validation fold (see
// CVResult.Failures).
type FoldError = eval.FoldError

// Warning records a non-fatal degradation during Fit — a min_sup
// escalation under OnBudgetDegrade, a non-converged SMO solve. Read
// them from Classifier.Stats.Warnings.
type Warning = core.Warning

// BudgetPolicy selects the response to the pattern-budget trip during
// mining (see WithOnBudget).
type BudgetPolicy = core.BudgetPolicy

const (
	// OnBudgetFail fails the fit with ErrPatternBudget (default).
	OnBudgetFail = core.FailOnBudget
	// OnBudgetDegrade escalates min_sup geometrically and re-mines,
	// recording each escalation as a Warning.
	OnBudgetDegrade = core.DegradeOnBudget
)

// Sentinel errors for bounded execution, matchable with errors.Is
// through any wrapping the pipeline applies.
var (
	// ErrCanceled reports a run stopped by context cancellation.
	ErrCanceled = guard.ErrCanceled
	// ErrDeadline reports a run stopped by a context or stage deadline.
	ErrDeadline = guard.ErrDeadline
	// ErrMemoryLimit reports a run stopped by the soft memory ceiling.
	ErrMemoryLimit = guard.ErrMemoryLimit
	// ErrDegraded reports that min_sup escalation was attempted but
	// still could not fit the pattern budget.
	ErrDegraded = guard.ErrDegraded
	// ErrPartialResult reports a cross-validation run in which no fold
	// completed.
	ErrPartialResult = guard.ErrPartialResult
	// ErrPatternBudget reports mining aborted past WithMaxPatterns.
	ErrPatternBudget = mining.ErrPatternBudget
)

// CompareResult reports a paired t-test between two CV runs.
type CompareResult = eval.CompareResult

// FeatureReport describes one selected pattern feature: the readable
// conjunction, its support, information gain, Fisher score, and the
// class it votes for. Obtain reports from Classifier.Explain after Fit.
type FeatureReport = core.FeatureReport

// PatternStat carries the per-feature measures plotted in the paper's
// Figures 1–3 (length, support, information gain, Fisher score).
type PatternStat = core.PatternStat

// BoundPoint is one point of a theoretical bound curve (Figures 2–3).
type BoundPoint = core.BoundPoint

// Family selects one of the paper's model families (Tables 1–2).
type Family int

const (
	// ItemAll uses all single features.
	ItemAll Family = iota
	// ItemFS uses MMRFS-selected single features.
	ItemFS
	// ItemRBF uses all single features under an RBF-kernel SVM.
	ItemRBF
	// PatAll uses all single features plus every closed frequent
	// pattern (no selection).
	PatAll
	// PatFS uses all single features plus MMRFS-selected closed
	// frequent patterns — the paper's proposed configuration.
	PatFS
)

func (f Family) String() string {
	switch f {
	case ItemAll:
		return "Item_All"
	case ItemFS:
		return "Item_FS"
	case ItemRBF:
		return "Item_RBF"
	case PatAll:
		return "Pat_All"
	case PatFS:
		return "Pat_FS"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Learner selects the model-learning algorithm.
type Learner int

const (
	// SVM is a linear-kernel support vector machine (the paper's
	// primary learner).
	SVM Learner = iota
	// C45 is a C4.5 decision tree.
	C45
	// NaiveBayes is a Bernoulli naive Bayes learner. Not part of the
	// paper's tables; included because the framework is
	// learner-agnostic.
	NaiveBayes
	// KNN is a k-nearest-neighbour learner over the binary feature
	// space with Jaccard distance.
	KNN
)

func (l Learner) String() string {
	switch l {
	case SVM:
		return "SVM"
	case C45:
		return "C4.5"
	case NaiveBayes:
		return "NaiveBayes"
	case KNN:
		return "kNN"
	default:
		return fmt.Sprintf("Learner(%d)", int(l))
	}
}

// Option customizes a Classifier.
type Option func(*core.Config)

// WithMinSupport fixes the relative min_sup θ0 for pattern mining. When
// not set, min_sup is derived by the paper's Section 3.2 strategy from
// the information-gain threshold (WithIGThreshold).
func WithMinSupport(rel float64) Option {
	return func(c *core.Config) { c.MinSupport = rel }
}

// WithIGThreshold sets the information-gain filter level IG0 that the
// automatic min_sup strategy maps to a support threshold.
func WithIGThreshold(ig0 float64) Option {
	return func(c *core.Config) { c.IG0 = ig0 }
}

// WithCoverage sets MMRFS's database coverage parameter δ.
func WithCoverage(delta int) Option {
	return func(c *core.Config) { c.Coverage = delta }
}

// WithFisherRelevance switches MMRFS's relevance measure from
// information gain to Fisher score.
func WithFisherRelevance() Option {
	return func(c *core.Config) { c.Relevance = featsel.Fisher }
}

// WithSVMC sets the SVM soft-margin penalty C.
func WithSVMC(cval float64) Option {
	return func(c *core.Config) { c.SVMC = cval }
}

// WithRBFGamma sets γ for the RBF kernel (ItemRBF family).
func WithRBFGamma(gamma float64) Option {
	return func(c *core.Config) { c.RBFGamma = gamma }
}

// WithMaxPatternLen caps the length of mined patterns.
func WithMaxPatternLen(n int) Option {
	return func(c *core.Config) { c.MaxPatternLen = n }
}

// WithMaxPatterns caps the total mined pattern count; exceeding it
// fails the fit with a pattern-budget error.
func WithMaxPatterns(n int) Option {
	return func(c *core.Config) { c.MaxPatterns = n }
}

// WithMDLDiscretization switches numeric discretization from the
// default equal-frequency binning to Fayyad–Irani entropy-MDL.
func WithMDLDiscretization() Option {
	return func(c *core.Config) { c.Disc = discretize.Options{Method: discretize.EntropyMDL} }
}

// WithChiMergeDiscretization switches numeric discretization to
// Kerber's ChiMerge (supervised bottom-up interval merging).
func WithChiMergeDiscretization() Option {
	return func(c *core.Config) { c.Disc = discretize.Options{Method: discretize.ChiMerge} }
}

// WithBins sets the bin count for equal-frequency/equal-width
// discretization.
func WithBins(n int) Option {
	return func(c *core.Config) { c.Disc.Bins = n }
}

// WithTreeConfig configures the C4.5 learner.
func WithTreeConfig(cfg c45.Config) Option {
	return func(c *core.Config) { c.Tree = cfg }
}

// WithCGrid enables inner model selection for SVM learners: Fit
// cross-validates over the given C values on the training rows and
// keeps the best, matching the paper's protocol of picking the best
// model on each training set.
func WithCGrid(grid ...float64) Option {
	return func(c *core.Config) { c.CGrid = append([]float64(nil), grid...) }
}

// WithProbability calibrates Platt sigmoids during Fit so
// Classifier.PredictProb returns per-class probability estimates
// (SVM learners only).
func WithProbability() Option {
	return func(c *core.Config) { c.Probability = true }
}

// WithStageTimeout bounds each pipeline stage (mining, selection,
// learning) individually; a stage running past it aborts the fit with
// an error satisfying errors.Is(err, ErrDeadline). Whole-run bounds
// come from the context passed to Classifier.FitContext.
func WithStageTimeout(d time.Duration) Option {
	return func(c *core.Config) { c.StageTimeout = d }
}

// WithMemoryLimit sets a soft heap-allocation ceiling in bytes,
// enforced during mining; exceeding it aborts the fit with an error
// satisfying errors.Is(err, ErrMemoryLimit).
func WithMemoryLimit(bytes uint64) Option {
	return func(c *core.Config) { c.MemLimit = bytes }
}

// WithOnBudget selects the pattern-budget policy: OnBudgetFail (the
// default) or OnBudgetDegrade. retries and backoff tune the
// degradation (0 keeps the defaults: 4 retries, factor 2).
func WithOnBudget(policy BudgetPolicy, retries int, backoff float64) Option {
	return func(c *core.Config) {
		c.OnBudget = policy
		c.BudgetRetries = retries
		c.BudgetBackoff = backoff
	}
}

// WithWorkers bounds the classifier's internal parallelism: per-class
// mining, the MMRFS gain scan, and the one-vs-one SVM subproblems fan
// out across up to n goroutines (0 = GOMAXPROCS, 1 = sequential, the
// default). Every parallel region merges deterministically, so the
// fitted model, the selected patterns, and all predictions are
// identical at any worker count. The setting is never serialized with
// saved models.
func WithWorkers(n int) Option {
	return func(c *core.Config) { c.Workers = parallel.Workers(n) }
}

// Classifier is a configured classification pipeline. It implements
// the eval.Pipeline contract used by CrossValidate: Fit on dataset rows
// then Predict other rows.
type Classifier = core.Pipeline

// Observer records a pipeline run: nestable stage spans (wall time,
// allocation deltas, attributes) plus pipeline counters and gauges —
// items mapped, FP-tree nodes built, patterns mined and pruned, MMRFS
// iterations and coverage residual, SMO iterations, tree size, per-fold
// timings. A nil *Observer is valid everywhere and disables recording
// at zero cost.
type Observer = obs.Observer

// RunReport is the machine-readable summary of an observed run; it
// JSON round-trips losslessly and renders as a human-readable tree,
// CSV, or a Chrome trace_event timeline loadable in Perfetto
// (WriteTree/WriteJSON/WriteCSV/WriteTrace).
type RunReport = obs.RunReport

// PredictionExplanation is the per-row evidence returned by
// Classifier.PredictExplain: the fired pattern features with their
// training-set measures and (for linear SVMs) signed weight
// contributions, plus the learner's own decision breakdown.
type PredictionExplanation = core.PredictionExplanation

// FiredPattern is one pattern feature that matched an explained row.
type FiredPattern = core.FiredPattern

// ProgressFunc is notified after each completed cross-validation fold.
type ProgressFunc = eval.ProgressFunc

// NewObserver returns an enabled observer. Install it on a classifier
// with WithObserver (or Classifier.SetObserver) and snapshot results
// with Observer.Report.
func NewObserver() *Observer { return obs.New() }

// WithObserver installs an observer that records the pipeline's stage
// spans and counters during Fit and Predict.
func WithObserver(o *Observer) Option {
	return func(c *core.Config) { c.Obs = o }
}

// WithLogger installs a structured logger (log/slog) that receives
// stage-scoped DEBUG records and degradation WARN records during Fit —
// mining per class partition, MMRFS selection, SMO/C4.5 learning,
// min_sup escalations, non-converged solves. A nil logger disables
// logging at zero cost.
func WithLogger(l *slog.Logger) Option {
	return func(c *core.Config) { c.Log = obs.Log(l) }
}

// NewClassifier builds a classifier of the given family and learner.
func NewClassifier(f Family, l Learner, opts ...Option) *Classifier {
	cfg := core.Config{}
	switch l {
	case C45:
		cfg.Learner = core.C45Tree
	case NaiveBayes:
		cfg.Learner = core.NaiveBayes
	case KNN:
		cfg.Learner = core.KNN
	default:
		cfg.Learner = core.SVMLinear
	}
	switch f {
	case ItemFS:
		cfg.SelectItems = true
	case ItemRBF:
		cfg.Learner = core.SVMRBF
	case PatAll:
		cfg.UsePatterns = true
	case PatFS:
		cfg.UsePatterns = true
		cfg.SelectPatterns = true
	}
	for _, o := range opts {
		o(&cfg)
	}
	p, err := core.New(cfg)
	if err != nil {
		// The only construction error is the mutually exclusive
		// SelectItems/UsePatterns combination, which the Family switch
		// above cannot produce.
		panic(err)
	}
	return p
}

// LoadCSV reads a dataset from CSV: header row, class label in the last
// column, "?" for missing cells. Numeric columns are detected
// automatically.
func LoadCSV(r io.Reader, name string) (*Dataset, error) {
	return dataset.ReadCSV(r, name)
}

// SaveCSV writes a dataset in the format LoadCSV reads.
func SaveCSV(w io.Writer, d *Dataset) error {
	return dataset.WriteCSV(w, d)
}

// Generate builds one of the bundled synthetic benchmark datasets
// (stand-ins for the paper's UCI datasets; see DESIGN.md). The seed
// fixes the random draw.
func Generate(name string, seed int64) (*Dataset, error) {
	return datagen.ByName(name, seed)
}

// DatasetNames lists the bundled benchmark dataset names.
func DatasetNames() []string { return datagen.Names() }

// CrossValidate runs stratified k-fold cross validation (the paper's
// protocol uses k = 10).
func CrossValidate(c *Classifier, d *Dataset, k int, seed int64) (*CVResult, error) {
	return eval.CrossValidate(c, d, k, seed)
}

// CrossValidateObserved is CrossValidate with observability: the
// observer is installed on the classifier (so every fold's fit/predict
// stages nest under per-fold spans) and progress, when non-nil, is
// called after each fold — long runs can report "fold 3/10 done in
// 1.2s". Snapshot the result with o.Report.
func CrossValidateObserved(c *Classifier, d *Dataset, k int, seed int64, o *Observer, progress ProgressFunc) (*CVResult, error) {
	c.SetObserver(o)
	return eval.CrossValidateOpt(c, d, k, seed, eval.CVOptions{Obs: o, Progress: progress})
}

// CrossValidateContext is CrossValidate under a context with full
// CVOptions: cancellation or a context deadline aborts the run
// cooperatively (errors.Is(err, ErrCanceled) / ErrDeadline), and
// opt.ContinueOnError isolates fold failures into CVResult.Failures
// instead of aborting — Mean/Std then cover the completed folds only,
// and a run with no completed fold returns an error satisfying
// errors.Is(err, ErrPartialResult).
func CrossValidateContext(ctx context.Context, c *Classifier, d *Dataset, k int, seed int64, opt CVOptions) (*CVResult, error) {
	if opt.Obs != nil {
		c.SetObserver(opt.Obs)
	}
	return eval.CrossValidateContext(ctx, c, d, k, seed, opt)
}

// Compare runs a two-sided paired t-test over the fold accuracies of
// two cross-validation results evaluated on the same folds, reporting
// whether the accuracy difference is significant at the 5% level.
func Compare(a, b *CVResult) (*CompareResult, error) {
	return eval.Compare(a, b)
}

// TrainTestSplit returns stratified train/test row indices.
func TrainTestSplit(d *Dataset, testFrac float64, seed int64) (train, test []int, err error) {
	return dataset.StratifiedSplit(d.Labels, d.NumClasses(), testFrac, seed)
}

// Evaluate fits the classifier on train rows and returns its accuracy
// on test rows.
func Evaluate(c *Classifier, d *Dataset, train, test []int) (float64, error) {
	return eval.HoldOut(c, d, train, test)
}

// AnalyzePatterns mines a dataset's closed patterns and reports each
// feature's length, support, information gain, and Fisher score — the
// raw material of the paper's Figures 1–3. With includeSingles, single
// features are included as length-1 entries. It also returns the
// per-class instance counts needed for the bound overlays.
func AnalyzePatterns(d *Dataset, minSupport float64, includeSingles bool) ([]PatternStat, []int, error) {
	stats, b, err := core.AnalyzePatterns(d, core.AnalyzeOptions{
		MinSupport:     minSupport,
		IncludeSingles: includeSingles,
	})
	if err != nil {
		return nil, nil, err
	}
	return stats, b.ClassCounts(), nil
}

// IGUpperBound returns the paper's information-gain upper bound
// IGub(θ) for a two-class problem with minority prior p — the Figure 2
// envelope.
func IGUpperBound(theta, p float64) float64 {
	return measures.IGUpperBound(theta, p)
}

// FisherUpperBound returns the Fisher-score upper bound Frub(θ) — the
// Figure 3 envelope.
func FisherUpperBound(theta, p float64) float64 {
	return measures.FisherUpperBound(theta, p)
}

// IGBoundCurve returns IGub at every absolute support for the given
// class counts.
func IGBoundCurve(classCounts []int) []BoundPoint {
	return core.IGBoundCurve(classCounts)
}

// FisherBoundCurve returns Frub at every absolute support.
func FisherBoundCurve(classCounts []int) []BoundPoint {
	return core.FisherBoundCurve(classCounts)
}

// MinSupportForIG implements the min_sup-setting strategy (Eq. 8):
// given an information-gain threshold IG0, a two-class minority prior
// p, and n training instances, it returns the largest absolute support
// whose IG upper bound stays at or below IG0. Mining with min_sup one
// above it loses no feature an IG0 filter would keep.
func MinSupportForIG(ig0, p float64, n int) (int, error) {
	return measures.MinSupportForIG(ig0, p, n)
}

// MinSupportForFisher is the Fisher-score variant of the strategy.
func MinSupportForFisher(fr0, p float64, n int) (int, error) {
	return measures.MinSupportForFisher(fr0, p, n)
}

// SaveModel serializes a fitted classifier so it can be reloaded with
// LoadModel and used for prediction without retraining.
func SaveModel(w io.Writer, c *Classifier) error {
	return c.Save(w)
}

// LoadModel restores a classifier saved with SaveModel.
func LoadModel(r io.Reader) (*Classifier, error) {
	return core.Load(r)
}
