package dfpc

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// The introspection layer (per-depth miner counters, IG-quality
// histograms, bound-tightness stats, the MMRFS audit trail, and
// per-prediction explanations) must not perturb results, and its own
// records must themselves be deterministic at any worker count: all
// sinks are order-insensitive shared-registry recorders and the audit
// is produced by the sequential greedy loop.

// introspectionSignature captures everything the worker count could
// plausibly perturb in the introspection output.
type introspectionSignature struct {
	counters    map[string]int64
	histCounts  map[string]int64
	audit       []string
	predictions []int
	explains    []PredictionExplanation
}

// introspectionFamily reports whether a metric belongs to the
// introspection namespace pinned by this suite.
func introspectionFamily(name string) bool {
	for _, p := range []string{"mine.depth", "mine.ig_by_", "measures.ig_bound", "mmrfs."} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func fitIntrospected(t *testing.T, d *Dataset, workers int) introspectionSignature {
	t.Helper()
	train, test, err := TrainTestSplit(d, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	o := NewObserver()
	clf := NewClassifier(PatFS, SVM,
		WithMinSupport(0.15), WithWorkers(workers), WithObserver(o))
	if err := clf.Fit(d, train); err != nil {
		t.Fatalf("workers=%d: fit: %v", workers, err)
	}
	pred, err := clf.Predict(d, test)
	if err != nil {
		t.Fatalf("workers=%d: predict: %v", workers, err)
	}
	exps, err := clf.PredictExplain(context.Background(), d, test[:10])
	if err != nil {
		t.Fatalf("workers=%d: explain: %v", workers, err)
	}

	r := o.Report("introspect")
	sig := introspectionSignature{
		counters:    map[string]int64{},
		histCounts:  map[string]int64{},
		predictions: pred,
		explains:    exps,
	}
	for name, v := range r.Counters {
		if introspectionFamily(name) {
			sig.counters[name] = v
		}
	}
	for name, h := range r.Histograms {
		if introspectionFamily(name) {
			sig.histCounts[name] = h.Count
		}
	}
	// Serialize audit entries fully — iteration, candidate, Eq. 10
	// quantities, and the decision — so any drift fails DeepEqual.
	for _, e := range clf.Stats.SelectionAudit {
		sig.audit = append(sig.audit, fmt.Sprintf("%+v", e))
	}
	return sig
}

func TestDeterminismWithIntrospection(t *testing.T) {
	d, err := Generate("austral", 1)
	if err != nil {
		t.Fatal(err)
	}
	base := fitIntrospected(t, d, 1)
	if len(base.counters) == 0 {
		t.Fatal("no introspection counters recorded; test would be vacuous")
	}
	if len(base.audit) == 0 {
		t.Fatal("no selection audit recorded; test would be vacuous")
	}
	for _, w := range []int{2, 8} {
		got := fitIntrospected(t, d, w)
		if !reflect.DeepEqual(got.counters, base.counters) {
			t.Errorf("workers=%d: introspection counters diverge:\n got %v\nwant %v", w, got.counters, base.counters)
		}
		if !reflect.DeepEqual(got.histCounts, base.histCounts) {
			t.Errorf("workers=%d: histogram sample counts diverge:\n got %v\nwant %v", w, got.histCounts, base.histCounts)
		}
		if !reflect.DeepEqual(got.audit, base.audit) {
			t.Errorf("workers=%d: MMRFS audit trail diverges", w)
		}
		if !reflect.DeepEqual(got.predictions, base.predictions) {
			t.Errorf("workers=%d: predictions diverge under introspection", w)
		}
		if !reflect.DeepEqual(got.explains, base.explains) {
			t.Errorf("workers=%d: per-prediction explanations diverge", w)
		}
	}

	// Introspection must also be inert: the plain fit signature is
	// unchanged by attaching an observer.
	plain := fitOnce(t, d, 1)
	if !reflect.DeepEqual(plain.predictions, base.predictions) {
		t.Error("attaching an observer changed the predictions")
	}
}
