package dfpc

// Drift tracking rides the predict path, so it inherits the repo-wide
// determinism contract: the fit-time baseline, the live sketch state,
// and the /drift JSON a debug server renders must all be byte-identical
// at any worker count. check.sh runs this suite under -race, which also
// makes the live-server test a concurrency pin: scrapes race a Fit on a
// shared observer and tracked predictions without tripping the detector.

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"dfpc/internal/modelobs"
	"dfpc/internal/obs"
	"dfpc/internal/telemetry"
)

// driftSignature captures everything the worker count could plausibly
// perturb in the drift layer, each as raw bytes.
type driftSignature struct {
	baseline []byte // gob of the fit-time Baseline
	sketch   []byte // gob of the live SketchSnapshot after predicting
	report   []byte // json of Tracker.Report
	served   []byte // body of GET /drift from a live debug server
}

func driftOnce(t *testing.T, d *Dataset, workers int) driftSignature {
	t.Helper()
	train, test, err := TrainTestSplit(d, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	clf := NewClassifier(PatFS, SVM,
		WithMinSupport(0.15), WithWorkers(workers))
	if err := clf.Fit(d, train); err != nil {
		t.Fatalf("workers=%d: fit: %v", workers, err)
	}
	tr := modelobs.NewTracker(modelobs.TrackerConfig{WindowSize: 16, Windows: 4})
	clf.SetDriftTracker(tr)
	if _, err := clf.Predict(d, test); err != nil {
		t.Fatalf("workers=%d: predict: %v", workers, err)
	}

	var sig driftSignature
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(clf.Baseline()); err != nil {
		t.Fatal(err)
	}
	sig.baseline = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	snap := tr.SketchSnapshot()
	if snap.Total == 0 {
		t.Fatalf("workers=%d: sketch observed nothing; test would be vacuous", workers)
	}
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	sig.sketch = append([]byte(nil), buf.Bytes()...)
	rep, err := tr.Report()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Dimensions) != 5 || rep.Predictions == 0 {
		t.Fatalf("workers=%d: degenerate report: %+v", workers, rep)
	}
	if sig.report, err = json.Marshal(rep); err != nil {
		t.Fatal(err)
	}

	s := telemetry.NewServer(telemetry.ServerConfig{Addr: "127.0.0.1:0", Drift: tr})
	ctx, cancel := context.WithCancel(context.Background())
	if err := s.Start(ctx); err != nil {
		cancel()
		t.Fatalf("workers=%d: server start: %v", workers, err)
	}
	defer func() {
		cancel()
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer scancel()
		_ = s.Shutdown(sctx)
	}()
	resp, err := http.Get("http://" + s.Addr() + "/drift")
	if err != nil {
		t.Fatalf("workers=%d: GET /drift: %v", workers, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workers=%d: /drift status %d", workers, resp.StatusCode)
	}
	if sig.served, err = io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
	return sig
}

// TestDriftDeterminismAcrossWorkerCounts: baseline bytes, sketch state,
// the report JSON, and the served /drift body are byte-identical at
// workers 1, 2, and 8.
func TestDriftDeterminismAcrossWorkerCounts(t *testing.T) {
	d, err := Generate("austral", 1)
	if err != nil {
		t.Fatal(err)
	}
	base := driftOnce(t, d, 1)
	for _, w := range []int{2, 8} {
		got := driftOnce(t, d, w)
		if !bytes.Equal(got.baseline, base.baseline) {
			t.Errorf("workers=%d: baseline bytes diverge from sequential", w)
		}
		if !bytes.Equal(got.sketch, base.sketch) {
			t.Errorf("workers=%d: sketch state diverges from sequential", w)
		}
		if !bytes.Equal(got.report, base.report) {
			t.Errorf("workers=%d: drift report JSON diverges:\n--- want ---\n%s\n--- got ---\n%s",
				w, base.report, got.report)
		}
		if !bytes.Equal(got.served, base.served) {
			t.Errorf("workers=%d: served /drift body diverges from sequential", w)
		}
	}
}

// TestDriftLiveServerUnderConcurrentFit scrapes /drift and /metrics
// while a Fit runs on the same observer and tracked predictions keep
// streaming — the debug server's view must stay coherent mid-training.
func TestDriftLiveServerUnderConcurrentFit(t *testing.T) {
	d, err := Generate("austral", 1)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := TrainTestSplit(d, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	clf := NewClassifier(PatFS, SVM, WithMinSupport(0.15), WithObserver(o))
	if err := clf.Fit(d, train); err != nil {
		t.Fatal(err)
	}
	tr := modelobs.NewTracker(modelobs.TrackerConfig{WindowSize: 8, Obs: o})
	clf.SetDriftTracker(tr)

	s := telemetry.NewServer(telemetry.ServerConfig{Addr: "127.0.0.1:0", Obs: o, Drift: tr})
	ctx, cancel := context.WithCancel(context.Background())
	if err := s.Start(ctx); err != nil {
		cancel()
		t.Fatalf("server start: %v", err)
	}
	defer func() {
		cancel()
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer scancel()
		_ = s.Shutdown(sctx)
	}()

	// Concurrent trainer: a second classifier refitting on the shared
	// observer while the scrapes below are in flight.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			other := NewClassifier(PatFS, SVM, WithMinSupport(0.15), WithObserver(o))
			if err := other.Fit(d, train); err != nil {
				t.Errorf("concurrent fit: %v", err)
				return
			}
		}
	}()

	base := "http://" + s.Addr()
	for i := 0; i < 5; i++ {
		if _, err := clf.Predict(d, test); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get(base + "/drift")
		if err != nil {
			t.Fatalf("GET /drift: %v", err)
		}
		var rep modelobs.DriftReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			resp.Body.Close()
			t.Fatalf("decode /drift: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/drift status %d", resp.StatusCode)
		}
		if !rep.Bound || rep.Predictions != int64((i+1)*len(test)) {
			t.Fatalf("scrape %d: bound=%v predictions=%d, want %d",
				i, rep.Bound, rep.Predictions, (i+1)*len(test))
		}
	}
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"dfpc_drift_predictions_total", "dfpc_drift_windows_total", "dfpc_drift_psi_class_mix"} {
		if !strings.Contains(string(body), fam) {
			t.Errorf("/metrics missing %s", fam)
		}
	}
	wg.Wait()
}
