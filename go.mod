module dfpc

go 1.22
