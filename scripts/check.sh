#!/bin/sh
# check.sh — the repo's full verification gate: vet, the complete test
# suite under the race detector (wall-clock bounded so a hung test fails
# the gate instead of wedging it), and a short fuzz smoke over the
# dataset parsers. CI and pre-commit both run this.
#
# `check.sh bench` instead runs the bench-regression gate: it rebuilds
# the per-stage pipeline benchmark (experiments -benchjson) and diffs
# it against the committed BENCH_pipeline.json with cmd/benchdiff,
# failing if any stage's wall time regressed more than 30% (override
# with BENCH_THRESHOLD=0.50). Timing gates are noisy on shared runners,
# so CI runs this step non-blocking; run it locally before and after
# performance-sensitive changes.
#
# `check.sh speedup` measures the parallel execution layer: it runs the
# same benchmark at workers=1 and workers=GOMAXPROCS and asks benchdiff
# -expect-speedup whether the parallel run's wall clock beat the
# sequential one by SPEEDUP_MIN (default 1.3x). Wall-clock speedups are
# hardware-dependent — a single-core machine legitimately measures
# ~1.0x — so this gate is informational and CI runs it non-blocking.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "bench" ]; then
	out="${BENCH_OUT:-/tmp/BENCH_pipeline.new.json}"
	echo ">> go run ./cmd/experiments -benchjson $out"
	go run ./cmd/experiments -benchjson "$out"
	echo ">> go run ./cmd/benchdiff BENCH_pipeline.json $out"
	go run ./cmd/benchdiff BENCH_pipeline.json "$out"
	# Predict-path allocation benches: drift-on must not allocate more
	# than drift-off — the tracker's steady-state observation path is
	# allocation-free by contract (buffers are bound once at Bind).
	pb="${PREDICT_BENCH_OUT:-/tmp/predict_bench.txt}"
	echo ">> go test -bench 'BenchmarkPredictAllocs|BenchmarkPredictDriftOn|BenchmarkPredictThroughput|BenchmarkFeaturize' ./internal/core/"
	go test -run '^$' -bench 'BenchmarkPredictAllocs$|BenchmarkPredictDriftOn$|BenchmarkPredictThroughput|BenchmarkFeaturize' \
		-benchmem -benchtime=200x -count=1 ./internal/core/ | tee "$pb"
	awk '/^BenchmarkPredictAllocs/{off=$(NF-1)} /^BenchmarkPredictDriftOn/{on=$(NF-1)}
		END{ if (on == "" || off == "") { print "predict benches missing from output"; exit 1 }
		     if (on+0 > off+0) { printf "drift-on predict allocates more than drift-off (%s > %s allocs/op)\n", on, off; exit 1 } }' "$pb"
	# Compiled matcher must beat the naive per-pattern subset scan on a
	# bundled dataset (the two are proven byte-identical by the
	# differential tests; this asserts the speed half of the trade).
	awk '/^BenchmarkFeaturize\/compiled/{c=$3} /^BenchmarkFeaturize\/naive/{n=$3}
		END{ if (c == "" || n == "") { print "featurize benches missing from output"; exit 1 }
		     if (c+0 >= n+0) { printf "compiled featurize is not faster than naive (%s >= %s ns/op)\n", c, n; exit 1 }
		     printf "compiled featurize beats naive: %.2fx\n", n/c }' "$pb"
	echo "OK (bench)"
	exit 0
fi

if [ "${1:-}" = "speedup" ]; then
	seq="${SEQ_OUT:-/tmp/BENCH_seq.json}"
	par="${PAR_OUT:-/tmp/BENCH_par.json}"
	min="${SPEEDUP_MIN:-1.3}"
	echo ">> go run ./cmd/experiments -benchjson $seq -workers 1"
	go run ./cmd/experiments -benchjson "$seq" -workers 1
	echo ">> go run ./cmd/experiments -benchjson $par -workers 0"
	go run ./cmd/experiments -benchjson "$par" -workers 0
	echo ">> go run ./cmd/benchdiff -expect-speedup $min $seq $par"
	go run ./cmd/benchdiff -expect-speedup "$min" "$seq" "$par"
	echo "OK (speedup)"
	exit 0
fi

echo ">> go vet ./..."
go vet ./...

# Repo-specific static analysis (guard placement, sentinel-error
# discipline, float equality, ctx plumbing, obs nil-safety, math
# domains, atomic artifact writes, map-order escapes, determinism-domain
# clocks/rand, hot-path allocations, atomic/plain mixing). Exit 1 =
# findings, exit 2 = a package failed to load.
echo ">> go run ./cmd/dfpc-vet ./..."
go run ./cmd/dfpc-vet ./...

# Waiver audit: every //vet:ignore must carry a reason; a reasonless
# waiver is an invisible suppression and fails the gate.
echo ">> go run ./cmd/dfpc-vet -waivers ./..."
go run ./cmd/dfpc-vet -waivers ./...

echo ">> go test -race -timeout 10m ./..."
go test -race -timeout 10m ./...

# Parallel-determinism gate: the worker count must be invisible in
# mined patterns, selected features, predictions, and CV statistics.
# The suite is part of ./... above; this explicit pass keeps the
# contract visible in the gate's output and re-runs it under -race with
# a fresh count so a cached "ok" can never mask a regression.
echo ">> go test -race -count=1 -run 'Determinism|Parallel' ./ ./internal/parallel/ ./internal/mining/ ./internal/svm/ ./internal/eval/ ./internal/featsel/"
go test -race -count=1 -timeout 10m -run 'Determinism|Parallel' \
	./ ./internal/parallel/ ./internal/mining/ ./internal/svm/ ./internal/eval/ ./internal/featsel/

# Short fuzz smoke: one target per invocation (go test accepts a single
# -fuzz pattern), ~10s each. Catches shallow parser crashers early;
# longer hunts are a manual `go test -fuzz=FuzzParseX ./internal/dataset/`.
for target in FuzzParseARFF FuzzParseCSV FuzzParseLUCS; do
	echo ">> go test -fuzz=$target -fuzztime=10s ./internal/dataset/"
	go test -run='^$' -fuzz="$target\$" -fuzztime=10s ./internal/dataset/
done

echo "OK"
