#!/bin/sh
# check.sh — the repo's full verification gate: vet, the complete test
# suite under the race detector (wall-clock bounded so a hung test fails
# the gate instead of wedging it), and a short fuzz smoke over the
# dataset parsers. CI and pre-commit both run this.
#
# `check.sh bench` instead runs the bench-regression gate: it rebuilds
# the per-stage pipeline benchmark (experiments -benchjson) and diffs
# it against the committed BENCH_pipeline.json with cmd/benchdiff,
# failing if any stage's wall time regressed more than 30% (override
# with BENCH_THRESHOLD=0.50). Timing gates are noisy on shared runners,
# so CI runs this step non-blocking; run it locally before and after
# performance-sensitive changes.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "bench" ]; then
	out="${BENCH_OUT:-/tmp/BENCH_pipeline.new.json}"
	echo ">> go run ./cmd/experiments -benchjson $out"
	go run ./cmd/experiments -benchjson "$out"
	echo ">> go run ./cmd/benchdiff BENCH_pipeline.json $out"
	go run ./cmd/benchdiff BENCH_pipeline.json "$out"
	echo "OK (bench)"
	exit 0
fi

echo ">> go vet ./..."
go vet ./...

# Repo-specific static analysis (guard placement, sentinel-error
# discipline, float equality, ctx plumbing, obs nil-safety, math
# domains). Exit 1 = findings, exit 2 = a package failed to load.
echo ">> go run ./cmd/dfpc-vet ./..."
go run ./cmd/dfpc-vet ./...

echo ">> go test -race -timeout 10m ./..."
go test -race -timeout 10m ./...

# Short fuzz smoke: one target per invocation (go test accepts a single
# -fuzz pattern), ~10s each. Catches shallow parser crashers early;
# longer hunts are a manual `go test -fuzz=FuzzParseX ./internal/dataset/`.
for target in FuzzParseARFF FuzzParseCSV FuzzParseLUCS; do
	echo ">> go test -fuzz=$target -fuzztime=10s ./internal/dataset/"
	go test -run='^$' -fuzz="$target\$" -fuzztime=10s ./internal/dataset/
done

echo "OK"
