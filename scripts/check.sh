#!/bin/sh
# check.sh — the repo's full verification gate: vet, the complete test
# suite under the race detector (wall-clock bounded so a hung test fails
# the gate instead of wedging it), and a short fuzz smoke over the
# dataset parsers. CI and pre-commit both run this.
set -eu
cd "$(dirname "$0")/.."

echo ">> go vet ./..."
go vet ./...

# Repo-specific static analysis (guard placement, sentinel-error
# discipline, float equality, ctx plumbing, obs nil-safety, math
# domains). Exit 1 = findings, exit 2 = a package failed to load.
echo ">> go run ./cmd/dfpc-vet ./..."
go run ./cmd/dfpc-vet ./...

echo ">> go test -race -timeout 10m ./..."
go test -race -timeout 10m ./...

# Short fuzz smoke: one target per invocation (go test accepts a single
# -fuzz pattern), ~10s each. Catches shallow parser crashers early;
# longer hunts are a manual `go test -fuzz=FuzzParseX ./internal/dataset/`.
for target in FuzzParseARFF FuzzParseCSV FuzzParseLUCS; do
	echo ">> go test -fuzz=$target -fuzztime=10s ./internal/dataset/"
	go test -run='^$' -fuzz="$target\$" -fuzztime=10s ./internal/dataset/
done

echo "OK"
