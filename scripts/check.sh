#!/bin/sh
# check.sh — the repo's full verification gate: vet plus the complete
# test suite under the race detector. CI and pre-commit both run this.
set -eu
cd "$(dirname "$0")/.."

echo ">> go vet ./..."
go vet ./...

echo ">> go test -race ./..."
go test -race ./...

echo "OK"
