// Command dfpc-mine mines discriminative frequent patterns from a
// dataset and prints them with their measures — the feature-generation
// and analysis half of the framework, without training a classifier.
//
// Usage:
//
//	dfpc-mine -data heart.csv -minsup 0.1 -top 25
//	dfpc-mine -dataset austral -minsup 0.1 -closed=false
//	dfpc-mine -lucs letter.D106.N20000.C26.num -minsup 0.2
//
// Output columns: support, relative support, information gain, Fisher
// score, the theoretical IG upper bound at the pattern's support, and
// the pattern itself.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"dfpc"
	"dfpc/internal/dataset"
	"dfpc/internal/discretize"
	"dfpc/internal/durable"
	"dfpc/internal/faults"
	"dfpc/internal/measures"
	"dfpc/internal/mining"
	"dfpc/internal/obs"
	"dfpc/internal/parallel"
	"dfpc/internal/telemetry"
)

func main() {
	var (
		dataPath = flag.String("data", "", "CSV dataset (class label in last column)")
		arffPath = flag.String("arff", "", "ARFF dataset (class attribute last)")
		lucsPath = flag.String("lucs", "", "LUCS-KDD DN transaction file")
		bundled  = flag.String("dataset", "", "bundled synthetic dataset name")
		seed     = flag.Int64("seed", 1, "seed for synthetic datasets")
		minSup   = flag.Float64("minsup", 0.1, "relative per-class minimum support")
		closed   = flag.Bool("closed", true, "mine closed patterns (FPClose); false mines all (FPGrowth)")
		maxLen   = flag.Int("maxlen", 5, "maximum pattern length")
		top      = flag.Int("top", 30, "print the top-N patterns by information gain")
		sortBy   = flag.String("sort", "ig", "ranking: ig, fisher, or support")
		verbose  = flag.Bool("verbose", false, "print a stage-timing tree and mining counters to stderr")
		reportTo = flag.String("report", "", "write a JSON RunReport of the mining run here")
		traceTo  = flag.String("tracejson", "", "write a Chrome trace_event JSON timeline here (open in ui.perfetto.dev)")

		timeout  = flag.Duration("timeout", 0, "wall-clock bound for the mining run (0 = unbounded)")
		onBudget = flag.String("on-budget", "fail", "pattern-budget policy: fail, or degrade (escalate min_sup and re-mine)")
		workers  = flag.Int("workers", 1, "worker goroutines for per-class mining (0 = all CPUs; the mined union is identical at any count)")

		checkpointTo = flag.String("checkpoint", "", "write per-class partition checkpoints to this directory (replaying any valid ones already there)")
		faultSpec    = flag.String("faults", "", "deterministic fault-injection spec: point:nth[:kind],... (testing aid)")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for probabilistic fault arms")
	)
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfpc-mine:", err)
		os.Exit(1)
	}
	var ses *telemetry.Session
	fail := func(args ...any) {
		fmt.Fprintln(os.Stderr, append([]any{"dfpc-mine:"}, args...)...)
		ses.Close()
		stopProf()
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "dfpc-mine: profiling:", err)
		}
	}()

	var o *obs.Observer
	if *verbose || *reportTo != "" || *traceTo != "" || tf.NeedsObserver() {
		o = obs.New()
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	ses, err = tf.Start(ctx, "dfpc-mine", o, *verbose)
	if err != nil {
		fail(err)
	}
	defer ses.Close()
	o.SetLogger(ses.Log) // surface span-leak warnings
	if tf.DriftEnabled() {
		// The shared telemetry flag set carries the drift flags, but
		// mining emits no predictions to score against a baseline.
		ses.Log.Warn("-drift-warn/-drift-window have no effect: dfpc-mine produces no prediction stream")
	}

	var fr *faults.Registry
	if *faultSpec != "" {
		fr = faults.New(*faultSeed)
		if err := fr.Parse(*faultSpec); err != nil {
			fail(err)
		}
	}
	ses.SetFaults(fr)

	// First SIGINT/SIGTERM cancels mining gracefully (checkpoints and
	// journal intact); a second hard-exits with 130.
	ctx, stopSignals := telemetry.HandleSignals(ctx, ses.Log)
	defer stopSignals()

	sp := o.Start("load")
	d, err := load(*dataPath, *arffPath, *lucsPath, *bundled, *seed)
	sp.End()
	if err != nil {
		fail(err)
	}

	sp = o.Start("discretize").Attr("rows", d.NumRows())
	cat, err := discretize.FitApply(d, discretize.Options{})
	sp.End()
	if err != nil {
		fail(err)
	}
	sp = o.Start("encode")
	b, err := dataset.Encode(cat)
	if err != nil {
		sp.End()
		fail(err)
	}
	sp.Attr("items", b.NumItems()).End()
	usedSup := *minSup
	sp = o.Start("mine").Attr("min_sup", *minSup).Attr("closed", *closed)
	mopt := mining.PerClassOptions{
		MinSupport:  *minSup,
		Closed:      *closed,
		MaxLen:      *maxLen,
		MaxPatterns: 2_000_000,
		MinLen:      2,
		Ctx:         ctx,
		Obs:         o,
		Log:         obs.StageLogger(ses.Log, "mine"),
		Workers:     parallel.Workers(*workers),
		Faults:      fr,
	}
	if *checkpointTo != "" {
		// The key binds partition checkpoints to everything that shapes
		// the per-class pattern streams (worker count excluded: the
		// mined union is identical at any count).
		key := fmt.Sprintf("dfpc-mine|%s|%d|%v|%v|%d|%d", d.Name, b.NumRows(),
			*minSup, *closed, *maxLen, mopt.MaxPatterns)
		ck, err := mining.NewFileCheckpoint(*checkpointTo, key, fr)
		if err != nil {
			fail(err)
		}
		mopt.Checkpoint = ck
	}
	var ps []mining.Pattern
	var degs []mining.Degradation
	switch strings.ToLower(*onBudget) {
	case "", "fail":
		ps, err = mining.MinePerClass(b, mopt)
	case "degrade":
		// Each escalation is logged as a WARN record by the adaptive
		// miner itself; degs feeds the journal below.
		ps, degs, usedSup, err = mining.MinePerClassAdaptive(b, mopt, mining.Backoff{})
	default:
		err = fmt.Errorf("unknown -on-budget policy %q (want fail or degrade)", *onBudget)
	}
	sp.Attr("patterns", len(ps)).End()
	if err != nil {
		if mopt.Checkpoint != nil {
			fmt.Fprintf(os.Stderr,
				"dfpc-mine: completed partitions checkpointed in %s; rerun with the same -checkpoint to resume\n",
				*checkpointTo)
		}
		fail(err)
	}

	n := b.NumRows()
	curve := buildBoundLookup(b.ClassCounts())
	type scored struct {
		p      mining.Pattern
		ig, fr float64
	}
	sp = o.Start("score").Attr("patterns", len(ps))
	qr := measures.NewQualityRecorder(o, b.ClassMasks)
	rows := make([]scored, len(ps))
	for i, p := range ps {
		cover := b.Cover(p.Items)
		ig := measures.InfoGain(cover, b.ClassMasks)
		qr.Observe(ig, cover.Count(), p.Len())
		rows[i] = scored{
			p:  p,
			ig: ig,
			fr: measures.FisherScore(cover, b.ClassMasks),
		}
	}
	sp.End()
	sort.Slice(rows, func(i, j int) bool {
		switch *sortBy {
		case "fisher":
			return rows[i].fr > rows[j].fr
		case "support":
			return rows[i].p.Support > rows[j].p.Support
		default:
			return rows[i].ig > rows[j].ig
		}
	})

	fmt.Printf("dataset %s: %d rows, %d items, %d classes; mined %d patterns (min_sup %.3f, closed=%v)\n\n",
		d.Name, n, b.NumItems(), b.NumClasses(), len(ps), usedSup, *closed)
	fmt.Printf("%7s %7s %8s %8s %8s  %s\n", "support", "θ", "IG", "Fisher", "IG_ub", "pattern")
	limit := *top
	if limit > len(rows) {
		limit = len(rows)
	}
	for _, r := range rows[:limit] {
		theta := float64(r.p.Support) / float64(n)
		fisher := fmt.Sprintf("%8.4f", r.fr)
		if math.IsInf(r.fr, 1) {
			fisher = fmt.Sprintf("%8s", "+Inf")
		}
		var names []string
		for _, it := range r.p.Items {
			names = append(names, b.Space.ItemName(int(it)))
		}
		fmt.Printf("%7d %7.3f %8.4f %s %8.4f  %s\n",
			r.p.Support, theta, r.ig, fisher, curve(r.p.Support), strings.Join(names, " ∧ "))
	}

	var rep *obs.RunReport
	if o != nil {
		rep = o.Report(d.Name)
		ses.AddRun(rep)
		if *verbose {
			fmt.Fprintln(os.Stderr)
			rep.WriteTree(os.Stderr)
		}
		if *reportTo != "" {
			if err := durable.WriteAtomic(*reportTo, fr, rep.WriteJSON); err != nil {
				fail(err)
			}
			ses.Log.Info("run report written", "path", *reportTo)
		}
		if *traceTo != "" {
			if err := durable.WriteAtomic(*traceTo, fr, rep.WriteTrace); err != nil {
				fail(err)
			}
			ses.Log.Info("trace written", "path", *traceTo)
		}
	}
	warnings := make([]string, 0, len(degs))
	for _, dg := range degs {
		warnings = append(warnings, dg.String())
	}
	ses.Journal(telemetry.Record{
		Kind:    "mine",
		Dataset: d.Name,
		Config: map[string]any{
			"min_sup": usedSup,
			"closed":  *closed,
			"max_len": *maxLen,
		},
		Stages:   telemetry.StagesFromReport(rep),
		Warnings: warnings,
	})
}

// buildBoundLookup returns a function mapping absolute support to the
// IG upper bound under the dataset's class distribution.
func buildBoundLookup(classCounts []int) func(int) float64 {
	curve := dfpc.IGBoundCurve(classCounts)
	return func(sup int) float64 {
		if sup < 1 || sup > len(curve) {
			return 0
		}
		return curve[sup-1].Bound
	}
}

func load(csvPath, arffPath, lucsPath, bundled string, seed int64) (*dfpc.Dataset, error) {
	count := 0
	for _, s := range []string{csvPath, arffPath, lucsPath, bundled} {
		if s != "" {
			count++
		}
	}
	if count != 1 {
		return nil, fmt.Errorf("specify exactly one of -data, -arff, -lucs, -dataset")
	}
	switch {
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dfpc.LoadCSV(f, strings.TrimSuffix(csvPath, ".csv"))
	case arffPath != "":
		f, err := os.Open(arffPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.ReadARFF(f)
	case lucsPath != "":
		f, err := os.Open(lucsPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.ReadLUCS(f, lucsPath)
	default:
		return dfpc.Generate(bundled, seed)
	}
}
