// Command benchdiff compares two per-stage pipeline benchmark documents
// (as written by `experiments -benchjson`, e.g. the committed
// BENCH_pipeline.json) and fails when any stage's summed wall time
// regressed beyond a threshold. It is the comparison half of the
// check.sh bench gate:
//
//	go run ./cmd/experiments -benchjson /tmp/bench.json
//	go run ./cmd/benchdiff BENCH_pipeline.json /tmp/bench.json
//
// The threshold defaults to 0.30 (a stage may be up to 30% slower than
// the committed baseline before the gate trips) and can be set with
// -threshold or the BENCH_THRESHOLD environment variable; the flag
// wins. Stages whose baseline wall time is under -min-wall are skipped:
// sub-millisecond stages are dominated by scheduler noise, and a 30%
// swing there carries no signal.
//
// Exit status: 0 when every compared stage is within the threshold,
// 1 when at least one regressed, 2 on usage or parse errors.
//
// With -expect-speedup the tool switches from regression gating to
// speedup verification: the first document is a sequential (workers=1)
// run, the second a parallel one, and the comparison is per-run
// elapsed wall clock rather than per-stage sums — summed span times
// are parallelism-invariant by design (each fold's work costs the same
// no matter when it runs), so only run-level elapsed time can show a
// speedup. The gate fails (exit 1) when the overall speedup falls
// short of the expected factor:
//
//	go run ./cmd/experiments -benchjson /tmp/seq.json -workers 1
//	go run ./cmd/experiments -benchjson /tmp/par.json -workers 0
//	go run ./cmd/benchdiff -expect-speedup 1.3 /tmp/seq.json /tmp/par.json
//
// Wall-clock speedups are hardware-dependent (a single-core machine
// legitimately measures 1.0×), so CI runs this mode non-blocking.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"text/tabwriter"
	"time"

	"dfpc/internal/obs"
	"dfpc/internal/telemetry"
)

// benchDoc mirrors the document written by `experiments -benchjson`.
type benchDoc struct {
	Benchmark string                   `json:"benchmark"`
	Folds     int                      `json:"folds"`
	MinSup    float64                  `json:"min_sup"`
	Workers   int                      `json:"workers,omitempty"`
	Runs      []*obs.RunReport         `json:"runs"`
	Predict   []telemetry.PredictBench `json:"predict,omitempty"`
}

func main() {
	threshold := flag.Float64("threshold", defaultThreshold(),
		"max allowed per-stage slowdown vs baseline (0.30 = 30%; env BENCH_THRESHOLD sets the default)")
	minWall := flag.Duration("min-wall", 5*time.Millisecond,
		"skip stages whose summed baseline wall time is below this (noise floor)")
	expectSpeedup := flag.Float64("expect-speedup", 0,
		"compare run-level wall clock instead of per-stage sums and require\nSEQUENTIAL.json to be at least this factor slower than PARALLEL.json (0 = off)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [flags] BASELINE.json CURRENT.json\n"+
				"       benchdiff -expect-speedup FACTOR SEQUENTIAL.json PARALLEL.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fail(err)
	}
	if base.Benchmark != cur.Benchmark || base.Folds != cur.Folds {
		fail(fmt.Errorf("documents are not comparable: baseline %q/%d folds vs current %q/%d folds",
			base.Benchmark, base.Folds, cur.Benchmark, cur.Folds))
	}
	if *expectSpeedup > 0 {
		os.Exit(speedupMode(base, cur, *expectSpeedup))
	}

	baseStages := aggregate(base)
	curStages := aggregate(cur)

	names := make([]string, 0, len(baseStages))
	for name := range baseStages {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed := 0
	skipped := 0
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "stage\tbaseline\tcurrent\tdelta\tverdict\n")
	for _, name := range names {
		b := baseStages[name]
		c, ok := curStages[name]
		if !ok {
			// A stage absent from the current run (e.g. skipped by a
			// degradation) cannot regress; report it for visibility.
			fmt.Fprintf(tw, "%s\t%v\t-\t-\tmissing\n", name, round(b))
			continue
		}
		if b < int64(*minWall) {
			skipped++
			continue
		}
		delta := float64(c-b) / float64(b)
		verdict := "ok"
		if delta > *threshold {
			verdict = "REGRESSED"
			regressed++
		}
		fmt.Fprintf(tw, "%s\t%v\t%v\t%+.1f%%\t%s\n", name, round(b), round(c), 100*delta, verdict)
	}
	var added []string
	for name := range curStages {
		if _, ok := baseStages[name]; !ok && curStages[name] >= int64(*minWall) {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		fmt.Fprintf(tw, "%s\t-\t%v\t-\tnew\n", name, round(curStages[name]))
	}
	tw.Flush()
	if skipped > 0 {
		fmt.Printf("(%d stage(s) under the %v noise floor not compared)\n", skipped, *minWall)
	}
	regressed += comparePredict(base, cur, *threshold)
	if regressed > 0 {
		fmt.Printf("FAIL: %d stage(s) regressed beyond %.0f%%\n", regressed, 100**threshold)
		os.Exit(1)
	}
	fmt.Printf("ok: all compared stages within %.0f%% of baseline\n", 100**threshold)
}

// comparePredict gates the predict-throughput section: each
// (dataset, batch) pair's rows/sec may fall at most `threshold` below
// the committed baseline. Documents written before the section existed
// carry no predict entries, so the comparison silently has nothing to
// do against an old baseline — regenerating BENCH_pipeline.json arms
// it. Returns the number of regressed measurements.
func comparePredict(base, cur *benchDoc, threshold float64) int {
	if len(base.Predict) == 0 {
		if len(cur.Predict) > 0 {
			fmt.Println("(baseline has no predict-throughput section; not compared — regenerate the baseline to arm the gate)")
		}
		return 0
	}
	curBy := map[string]telemetry.PredictBench{}
	for _, m := range cur.Predict {
		curBy[fmt.Sprintf("%s/%d", m.Dataset, m.Batch)] = m
	}
	regressed := 0
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "predict\tbaseline rows/s\tcurrent rows/s\tdelta\tp99/row\tverdict\n")
	for _, b := range base.Predict {
		key := fmt.Sprintf("%s/%d", b.Dataset, b.Batch)
		c, ok := curBy[key]
		if !ok {
			fmt.Fprintf(tw, "%s\t%.0f\t-\t-\t-\tmissing\n", key, b.RowsPerSec)
			continue
		}
		delta := (c.RowsPerSec - b.RowsPerSec) / b.RowsPerSec
		verdict := "ok"
		if delta < -threshold {
			verdict = "REGRESSED"
			regressed++
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%v\t%s\n",
			key, b.RowsPerSec, c.RowsPerSec, 100*delta, time.Duration(c.P99NSPerRow), verdict)
	}
	tw.Flush()
	return regressed
}

// speedupMode compares per-run elapsed wall clock between a sequential
// and a parallel benchmark document and returns the process exit code:
// 0 when the overall speedup (summed sequential wall over summed
// parallel wall) meets the expected factor, 1 when it falls short.
// Per-stage span sums deliberately play no part here — they measure
// work, which parallelism does not reduce, only overlaps.
func speedupMode(seq, par *benchDoc, want float64) int {
	parRuns := map[string]*obs.RunReport{}
	for _, r := range par.Runs {
		parRuns[r.Name] = r
	}
	seqLabel, parLabel := workersLabel(seq.Workers), workersLabel(par.Workers)
	var seqTotal, parTotal int64
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "dataset\twall (%s)\twall (%s)\tspeedup\n", seqLabel, parLabel)
	for _, r := range seq.Runs {
		p, ok := parRuns[r.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t%v\t-\t-\n", r.Name, round(r.WallNS))
			continue
		}
		seqTotal += r.WallNS
		parTotal += p.WallNS
		ratio := "-"
		if p.WallNS > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(r.WallNS)/float64(p.WallNS))
		}
		fmt.Fprintf(tw, "%s\t%v\t%v\t%s\n", r.Name, round(r.WallNS), round(p.WallNS), ratio)
	}
	tw.Flush()
	if parTotal == 0 || seqTotal == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no overlapping runs with nonzero wall time")
		return 2
	}
	overall := float64(seqTotal) / float64(parTotal)
	fmt.Printf("overall wall-clock speedup: %.2fx (expected >= %.2fx)\n", overall, want)
	if overall < want {
		fmt.Printf("FAIL: speedup %.2fx below expected %.2fx (hardware-dependent: a single-core machine measures ~1.0x)\n",
			overall, want)
		return 1
	}
	fmt.Println("ok: parallel run meets the expected speedup")
	return 0
}

// workersLabel renders a document's recorded worker count for table
// headers; older documents carry no workers field.
func workersLabel(w int) string {
	if w <= 0 {
		return "workers=?"
	}
	return fmt.Sprintf("workers=%d", w)
}

// defaultThreshold reads BENCH_THRESHOLD, falling back to 0.30 when
// unset or unparseable (a bad value should not silently loosen the
// gate, so it warns).
func defaultThreshold() float64 {
	s := os.Getenv("BENCH_THRESHOLD")
	if s == "" {
		return 0.30
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: ignoring BENCH_THRESHOLD=%q: not a positive number\n", s)
		return 0.30
	}
	return v
}

// aggregate sums each stage's wall time across every run in the
// document, reusing the journal's span-tree flattening.
func aggregate(d *benchDoc) map[string]int64 {
	out := map[string]int64{}
	for _, r := range d.Runs {
		for _, st := range telemetry.StagesFromReport(r) {
			out[st.Name] += st.WallNS
		}
	}
	return out
}

func load(path string) (*benchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d benchDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(d.Runs) == 0 {
		return nil, fmt.Errorf("%s: no runs", path)
	}
	return &d, nil
}

func round(ns int64) time.Duration {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	}
	return d.Round(time.Microsecond)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
