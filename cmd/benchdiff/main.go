// Command benchdiff compares two per-stage pipeline benchmark documents
// (as written by `experiments -benchjson`, e.g. the committed
// BENCH_pipeline.json) and fails when any stage's summed wall time
// regressed beyond a threshold. It is the comparison half of the
// check.sh bench gate:
//
//	go run ./cmd/experiments -benchjson /tmp/bench.json
//	go run ./cmd/benchdiff BENCH_pipeline.json /tmp/bench.json
//
// The threshold defaults to 0.30 (a stage may be up to 30% slower than
// the committed baseline before the gate trips) and can be set with
// -threshold or the BENCH_THRESHOLD environment variable; the flag
// wins. Stages whose baseline wall time is under -min-wall are skipped:
// sub-millisecond stages are dominated by scheduler noise, and a 30%
// swing there carries no signal.
//
// Exit status: 0 when every compared stage is within the threshold,
// 1 when at least one regressed, 2 on usage or parse errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"text/tabwriter"
	"time"

	"dfpc/internal/obs"
	"dfpc/internal/telemetry"
)

// benchDoc mirrors the document written by `experiments -benchjson`.
type benchDoc struct {
	Benchmark string           `json:"benchmark"`
	Folds     int              `json:"folds"`
	MinSup    float64          `json:"min_sup"`
	Runs      []*obs.RunReport `json:"runs"`
}

func main() {
	threshold := flag.Float64("threshold", defaultThreshold(),
		"max allowed per-stage slowdown vs baseline (0.30 = 30%; env BENCH_THRESHOLD sets the default)")
	minWall := flag.Duration("min-wall", 5*time.Millisecond,
		"skip stages whose summed baseline wall time is below this (noise floor)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchdiff [flags] BASELINE.json CURRENT.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fail(err)
	}
	if base.Benchmark != cur.Benchmark || base.Folds != cur.Folds {
		fail(fmt.Errorf("documents are not comparable: baseline %q/%d folds vs current %q/%d folds",
			base.Benchmark, base.Folds, cur.Benchmark, cur.Folds))
	}

	baseStages := aggregate(base)
	curStages := aggregate(cur)

	names := make([]string, 0, len(baseStages))
	for name := range baseStages {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed := 0
	skipped := 0
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "stage\tbaseline\tcurrent\tdelta\tverdict\n")
	for _, name := range names {
		b := baseStages[name]
		c, ok := curStages[name]
		if !ok {
			// A stage absent from the current run (e.g. skipped by a
			// degradation) cannot regress; report it for visibility.
			fmt.Fprintf(tw, "%s\t%v\t-\t-\tmissing\n", name, round(b))
			continue
		}
		if b < int64(*minWall) {
			skipped++
			continue
		}
		delta := float64(c-b) / float64(b)
		verdict := "ok"
		if delta > *threshold {
			verdict = "REGRESSED"
			regressed++
		}
		fmt.Fprintf(tw, "%s\t%v\t%v\t%+.1f%%\t%s\n", name, round(b), round(c), 100*delta, verdict)
	}
	for name, c := range curStages {
		if _, ok := baseStages[name]; !ok && c >= int64(*minWall) {
			fmt.Fprintf(tw, "%s\t-\t%v\t-\tnew\n", name, round(c))
		}
	}
	tw.Flush()
	if skipped > 0 {
		fmt.Printf("(%d stage(s) under the %v noise floor not compared)\n", skipped, *minWall)
	}
	if regressed > 0 {
		fmt.Printf("FAIL: %d stage(s) regressed beyond %.0f%%\n", regressed, 100**threshold)
		os.Exit(1)
	}
	fmt.Printf("ok: all compared stages within %.0f%% of baseline\n", 100**threshold)
}

// defaultThreshold reads BENCH_THRESHOLD, falling back to 0.30 when
// unset or unparseable (a bad value should not silently loosen the
// gate, so it warns).
func defaultThreshold() float64 {
	s := os.Getenv("BENCH_THRESHOLD")
	if s == "" {
		return 0.30
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: ignoring BENCH_THRESHOLD=%q: not a positive number\n", s)
		return 0.30
	}
	return v
}

// aggregate sums each stage's wall time across every run in the
// document, reusing the journal's span-tree flattening.
func aggregate(d *benchDoc) map[string]int64 {
	out := map[string]int64{}
	for _, r := range d.Runs {
		for _, st := range telemetry.StagesFromReport(r) {
			out[st.Name] += st.WallNS
		}
	}
	return out
}

func load(path string) (*benchDoc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d benchDoc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(d.Runs) == 0 {
		return nil, fmt.Errorf("%s: no runs", path)
	}
	return &d, nil
}

func round(ns int64) time.Duration {
	d := time.Duration(ns)
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	}
	return d.Round(time.Microsecond)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
