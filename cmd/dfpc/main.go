// Command dfpc trains and evaluates a discriminative frequent-pattern
// classifier on a CSV dataset (or one of the bundled synthetic
// benchmarks).
//
// Usage:
//
//	dfpc -data heart.csv -family Pat_FS -learner svm -folds 10
//	dfpc -dataset austral -family Pat_FS -minsup 0.1
//	dfpc -list                 # list bundled datasets
//
// The CSV format is: header row; the class label in the last column;
// "?" marks missing cells. Numeric columns are detected automatically
// and discretized.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"dfpc"
	"dfpc/internal/durable"
	"dfpc/internal/eval"
	"dfpc/internal/faults"
	"dfpc/internal/modelobs"
	"dfpc/internal/obs"
	"dfpc/internal/parallel"
	"dfpc/internal/telemetry"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "path to a CSV dataset (class label in last column)")
		bundled   = flag.String("dataset", "", "bundled synthetic dataset name (see -list)")
		list      = flag.Bool("list", false, "list bundled dataset names and exit")
		family    = flag.String("family", "Pat_FS", "model family: Item_All, Item_FS, Item_RBF, Pat_All, Pat_FS")
		learner   = flag.String("learner", "svm", "learner: svm, c45, nbayes, or knn")
		folds     = flag.Int("folds", 10, "cross-validation folds")
		seed      = flag.Int64("seed", 1, "random seed for folds and synthetic data")
		minSup    = flag.Float64("minsup", 0, "relative min_sup; 0 derives it from -ig0 via the paper's strategy")
		ig0       = flag.Float64("ig0", 0.03, "information-gain threshold for the automatic min_sup strategy")
		coverage  = flag.Int("coverage", 3, "MMRFS database coverage δ")
		svmC      = flag.Float64("C", 1, "SVM soft-margin penalty")
		gamma     = flag.Float64("gamma", 0, "RBF γ (0 = 1/numFeatures)")
		useFisher = flag.Bool("fisher", false, "use Fisher score instead of information gain as MMRFS relevance")
		explain   = flag.Int("explain", 0, "print the top-N selected patterns; with -load, print per-prediction explanations for the first N rows as JSONL")
		saveTo    = flag.String("save", "", "after evaluation, train on the full dataset and save the model here")
		loadFrom  = flag.String("load", "", "load a saved model and predict the dataset (no training)")
		driftTo   = flag.String("drift-report", "", "write the final drift report (the /drift payload) as JSON here; needs -drift-warn or -drift-window")
		dumpCSV   = flag.String("dump-csv", "", "write the loaded dataset as CSV here and exit (for deriving shifted test splits)")
		verbose   = flag.Bool("verbose", false, "print per-fold progress and a stage-timing tree")
		reportTo  = flag.String("report", "", "write a JSON RunReport of the evaluation here")
		traceTo   = flag.String("tracejson", "", "write a Chrome trace_event JSON timeline here (open in ui.perfetto.dev)")

		timeout      = flag.Duration("timeout", 0, "whole-run wall-clock bound (0 = unbounded)")
		stageTimeout = flag.Duration("stage-timeout", 0, "per-stage wall-clock bound within each fit (0 = unbounded)")
		onBudget     = flag.String("on-budget", "fail", "pattern-budget policy: fail, or degrade (escalate min_sup and re-mine)")
		contOnError  = flag.Bool("continue-on-error", false, "isolate failing CV folds and report statistics over the completed ones")
		workers      = flag.Int("workers", 1, "worker goroutines for CV folds, mining, MMRFS, and SVM (0 = all CPUs; results are identical at any count)")

		checkpointTo = flag.String("checkpoint", "", "write per-fold checkpoints to this directory (replaying any valid ones already there)")
		resumeFrom   = flag.String("resume", "", "resume an interrupted run from this checkpoint directory (alias of -checkpoint)")
		faultSpec    = flag.String("faults", "", "deterministic fault-injection spec: point:nth[:kind],... (testing aid)")
		faultSeed    = flag.Int64("fault-seed", 1, "seed for probabilistic fault arms")
	)
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfpc:", err)
		os.Exit(1)
	}
	// os.Exit skips defers, so every exit path below funnels through
	// fail, which also closes the telemetry session (journal + server).
	var ses *telemetry.Session
	fail := func(args ...any) {
		fmt.Fprintln(os.Stderr, append([]any{"dfpc:"}, args...)...)
		ses.Close()
		stopProf()
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "dfpc: profiling:", err)
		}
	}()

	if *list {
		for _, n := range dfpc.DatasetNames() {
			fmt.Println(n)
		}
		return
	}

	d, err := loadData(*dataPath, *bundled, *seed)
	if err != nil {
		fail(err)
	}

	if *dumpCSV != "" {
		if err := durable.WriteAtomic(*dumpCSV, nil, func(w io.Writer) error {
			return dfpc.SaveCSV(w, d)
		}); err != nil {
			fail(err)
		}
		fmt.Printf("dataset written to %s\n", *dumpCSV)
		return
	}

	var fr *faults.Registry
	if *faultSpec != "" {
		fr = faults.New(*faultSeed)
		if err := fr.Parse(*faultSpec); err != nil {
			fail(err)
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var o *dfpc.Observer
	if *verbose || *reportTo != "" || *traceTo != "" || tf.NeedsObserver() {
		o = dfpc.NewObserver()
	}
	ses, err = tf.Start(ctx, "dfpc", o, *verbose)
	if err != nil {
		fail(err)
	}
	defer ses.Close()
	o.SetLogger(ses.Log) // surface span-leak warnings
	ses.SetFaults(fr)

	// First SIGINT/SIGTERM cancels the run (partial stats, flushed
	// journal, checkpoints intact); a second hard-exits with 130.
	ctx, stopSignals := telemetry.HandleSignals(ctx, ses.Log)
	defer stopSignals()

	if *loadFrom != "" {
		if err := predictOnly(ctx, *loadFrom, d, *explain, &tf, o, ses, fr, *driftTo); err != nil {
			fail(err)
		}
		return
	}

	fam, err := parseFamily(*family)
	if err != nil {
		fail(err)
	}
	lrn := dfpc.SVM
	switch strings.ToLower(*learner) {
	case "c45", "c4.5":
		lrn = dfpc.C45
	case "nbayes", "nb", "naivebayes":
		lrn = dfpc.NaiveBayes
	case "knn":
		lrn = dfpc.KNN
	}

	opts := []dfpc.Option{
		dfpc.WithIGThreshold(*ig0),
		dfpc.WithCoverage(*coverage),
		dfpc.WithSVMC(*svmC),
	}
	if *minSup > 0 {
		opts = append(opts, dfpc.WithMinSupport(*minSup))
	} else {
		opts = append(opts, dfpc.WithMinSupport(-1)) // automatic strategy
	}
	if *gamma > 0 {
		opts = append(opts, dfpc.WithRBFGamma(*gamma))
	}
	if *useFisher {
		opts = append(opts, dfpc.WithFisherRelevance())
	}
	if *stageTimeout > 0 {
		opts = append(opts, dfpc.WithStageTimeout(*stageTimeout))
	}
	opts = append(opts, dfpc.WithWorkers(*workers))
	switch strings.ToLower(*onBudget) {
	case "", "fail":
	case "degrade":
		opts = append(opts, dfpc.WithOnBudget(dfpc.OnBudgetDegrade, 0, 0))
	default:
		fail(fmt.Errorf("unknown -on-budget policy %q (want fail or degrade)", *onBudget))
	}

	clf := dfpc.NewClassifier(fam, lrn, opts...)
	if fr != nil {
		clf.SetFaults(fr)
	}
	clf.SetLogger(ses.Log)

	// CV folds share the tracker through the config clone; the first
	// fitted fold binds the baseline, the later folds' predictions
	// stream into the same sketch ring.
	drift := tf.NewDriftTracker(o, ses.Log)
	if drift != nil {
		drift.SetFaults(fr)
		clf.SetDriftTracker(drift)
		ses.EnableDrift(drift)
	}

	ckDir := *checkpointTo
	if *resumeFrom != "" {
		if ckDir != "" && ckDir != *resumeFrom {
			fail(fmt.Errorf("-checkpoint %q and -resume %q disagree; pass one directory", ckDir, *resumeFrom))
		}
		ckDir = *resumeFrom
	}
	var ck *eval.Checkpointer
	if ckDir != "" {
		// The key binds checkpoints to everything that determines fold
		// outcomes; worker count is deliberately absent (results are
		// identical at any count), so runs may resume at a different one.
		key := eval.CVKey("dfpc-cv", d.Name, d.NumRows(), *folds, *seed,
			fam.String(), lrn.String(), *minSup, *ig0, *coverage,
			*svmC, *gamma, *useFisher, strings.ToLower(*onBudget), *stageTimeout)
		ck, err = eval.NewCheckpointer(ckDir, key, fr)
		if err != nil {
			fail(err)
		}
		if done := ck.CompletedFolds(*folds); len(done) > 0 {
			ses.Log.Info("resuming from checkpoints",
				"dir", ckDir, "completed_folds", len(done), "total_folds", *folds)
		}
	}

	res, err := dfpc.CrossValidateContext(ctx, clf, d, *folds, *seed, dfpc.CVOptions{
		Obs:             o,
		Log:             ses.Log,
		ContinueOnError: *contOnError,
		Workers:         parallel.Workers(*workers),
		Faults:          fr,
		Checkpoint:      ck,
	})
	if err != nil {
		// An aborted run still carries the statistics of the folds that
		// finished; surface them (and the resume hint) before failing.
		if res != nil && res.Completed > 0 {
			fmt.Printf("interrupted: %d/%d folds completed, partial accuracy %.2f%% ± %.2f\n",
				res.Completed, *folds, 100*res.Mean, 100*res.Std)
			if ck != nil {
				fmt.Printf("checkpoints in %s; rerun with -resume %s to continue\n", ck.Dir(), ck.Dir())
			}
			ses.Journal(telemetry.Record{
				Kind:     "cv",
				Dataset:  d.Name,
				Folds:    res.Completed,
				Accuracy: res.Mean, AccuracyStd: res.Std,
				Warnings: []string{"interrupted: " + err.Error()},
			})
		}
		switch {
		case ctx.Err() != nil && errors.Is(err, dfpc.ErrDeadline):
			fail("run exceeded -timeout:", err)
		case errors.Is(err, dfpc.ErrDeadline):
			fail("stage exceeded -stage-timeout:", err)
		case errors.Is(err, dfpc.ErrCanceled):
			fail("run canceled:", err)
		default:
			fail(err)
		}
	}

	fmt.Printf("dataset     %s (%d rows, %d attrs, %d classes)\n",
		d.Name, d.NumRows(), d.NumAttrs(), d.NumClasses())
	fmt.Printf("model       %v + %v\n", fam, lrn)
	fmt.Printf("accuracy    %.2f%% ± %.2f (%d-fold CV)\n", 100*res.Mean, 100*res.Std, *folds)
	if len(res.Failures) > 0 {
		// The individual failures were already logged as WARN records by
		// the CV harness; the summary line keeps stdout self-contained.
		fmt.Printf("folds       %d/%d completed; statistics cover completed folds only\n",
			res.Completed, res.Completed+len(res.Failures))
	}
	fmt.Printf("train time  %v   test time  %v\n", res.TrainTime.Round(1e6), res.TestTime.Round(1e6))
	if clf.Stats.MinSupport > 0 {
		fmt.Printf("min_sup     %.4f (last fold), %d patterns mined, %d features selected\n",
			clf.Stats.MinSupport, clf.Stats.MinedCount, clf.Stats.FeatureCount)
	}
	if *explain > 0 {
		printExplanation(clf, *explain)
	}
	warnings := make([]string, 0, len(clf.Stats.Warnings)+len(res.Failures))
	for _, w := range clf.Stats.Warnings {
		warnings = append(warnings, w.String())
	}
	for _, fe := range res.Failures {
		warnings = append(warnings, fe.Error())
	}
	var rep *dfpc.RunReport
	if o != nil {
		rep = o.Report(d.Name)
		// The audit rides the report of the final (sequential-equivalent)
		// fold's fit, attached here rather than by the observer so
		// parallel folds can't race on it.
		if len(clf.Stats.SelectionAudit) > 0 {
			rep.Audits = map[string]any{"mmrfs": clf.Stats.SelectionAudit}
		}
		ses.AddRun(rep)
		// Stage detail goes to stderr: stdout carries only the summary
		// above, so it stays machine-parseable.
		if *verbose {
			fmt.Fprintln(os.Stderr)
			rep.WriteTree(os.Stderr)
		}
		if *reportTo != "" {
			if err := durable.WriteAtomic(*reportTo, fr, rep.WriteJSON); err != nil {
				fail(err)
			}
			ses.Log.Info("run report written", "path", *reportTo)
		}
		if *traceTo != "" {
			if err := durable.WriteAtomic(*traceTo, fr, rep.WriteTrace); err != nil {
				fail(err)
			}
			ses.Log.Info("trace written", "path", *traceTo)
		}
	}
	var audits map[string]any
	if len(clf.Stats.SelectionAudit) > 0 {
		audits = map[string]any{"mmrfs": clf.Stats.SelectionAudit}
	}
	ses.Journal(telemetry.Record{
		Kind:    "cv",
		Dataset: d.Name,
		Config: map[string]any{
			"family":   fam.String(),
			"learner":  lrn.String(),
			"seed":     *seed,
			"min_sup":  clf.Stats.MinSupport,
			"coverage": *coverage,
			"C":        *svmC,
		},
		Folds:       *folds,
		Accuracy:    res.Mean,
		AccuracyStd: res.Std,
		WallNS:      int64(res.TrainTime + res.TestTime),
		Stages:      telemetry.StagesFromReport(rep),
		Warnings:    warnings,
		Audits:      audits,
	})
	if err := emitDrift(drift, d.Name, *driftTo, fr, ses); err != nil {
		fail(err)
	}
	if *saveTo != "" {
		rows := make([]int, d.NumRows())
		for i := range rows {
			rows[i] = i
		}
		if err := clf.Fit(d, rows); err != nil {
			fail("final fit:", err)
		}
		if err := durable.WriteAtomic(*saveTo, fr, func(w io.Writer) error {
			return dfpc.SaveModel(w, clf)
		}); err != nil {
			fail(err)
		}
		fmt.Printf("model saved to %s\n", *saveTo)
	}
}

// predictOnly loads a saved model and prints one predicted class per
// dataset row. With explainN > 0 it instead prints per-prediction
// explanations for the first N rows, one JSON object per line: the
// fired patterns with their measures and SVM weight contributions (or
// the C4.5 decision path). The drift flags score the prediction stream
// against the model's fit-time baseline: live on /drift when -listen is
// set, as a journal record, and as a JSON file via -drift-report.
func predictOnly(ctx context.Context, path string, d *dfpc.Dataset, explainN int,
	tf *telemetry.Flags, o *dfpc.Observer, ses *telemetry.Session,
	fr *faults.Registry, driftTo string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	clf, err := dfpc.LoadModel(f)
	if err != nil {
		return err
	}
	if fr != nil {
		clf.SetFaults(fr)
	}
	clf.SetLogger(ses.Log)
	drift := tf.NewDriftTracker(o, ses.Log)
	if drift != nil {
		if clf.Baseline() == nil {
			// A v1 artifact predates fit-time baselines; there is nothing
			// to score live predictions against.
			ses.Log.Warn("loaded model carries no baseline (saved by a pre-drift build); drift tracking disabled")
			drift = nil
		} else {
			drift.SetFaults(fr)
			clf.SetDriftTracker(drift)
			ses.EnableDrift(drift)
		}
	}
	if explainN > 0 {
		if explainN > d.NumRows() {
			explainN = d.NumRows()
		}
		rows := make([]int, explainN)
		for i := range rows {
			rows[i] = i
		}
		exps, err := clf.PredictExplain(ctx, d, rows)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(os.Stdout)
		for _, ex := range exps {
			if err := enc.Encode(ex); err != nil {
				return err
			}
		}
		return nil
	}
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	// PredictBatch scores through the compiled-matcher path with one
	// scratch set for the whole file instead of per-call setup.
	pred := make([]int, len(rows))
	if err := clf.PredictBatch(ctx, d, rows, pred); err != nil {
		return err
	}
	correct := 0
	for i, p := range pred {
		fmt.Println(d.Classes[p])
		if p == d.Labels[i] {
			correct++
		}
	}
	fmt.Fprintf(os.Stderr, "accuracy vs labels in file: %.2f%%\n",
		100*float64(correct)/float64(len(pred)))
	return emitDrift(drift, d.Name, driftTo, fr, ses)
}

// emitDrift publishes a drift-tracked run's final report: a summary
// line on stderr, a journal record of kind "drift", and (with
// -drift-report) an atomic JSON artifact matching the /drift payload.
// A nil tracker — drift flags unset, or the model had no baseline —
// is a no-op.
func emitDrift(drift *modelobs.Tracker, dataset, path string,
	fr *faults.Registry, ses *telemetry.Session) error {
	rep, err := drift.Report()
	if err != nil {
		return err
	}
	if rep == nil || !rep.Bound {
		return nil
	}
	fmt.Fprintf(os.Stderr, "drift: max PSI %.4f over %d predictions (%d windows, %d warnings)\n",
		rep.MaxPSI, rep.Predictions, rep.Advanced, rep.Warnings)
	ses.Journal(telemetry.Record{Kind: "drift", Dataset: dataset, Drift: rep})
	if path == "" {
		return nil
	}
	if err := durable.WriteAtomic(path, fr, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}); err != nil {
		return err
	}
	ses.Log.Info("drift report written", "path", path)
	return nil
}

// printExplanation renders the top-n selected patterns of the last
// trained fold, ordered by information gain.
func printExplanation(clf *dfpc.Classifier, n int) {
	rep := clf.Explain()
	if len(rep) == 0 {
		fmt.Println("\nno pattern features to explain (item-only model?)")
		return
	}
	sort.Slice(rep, func(i, j int) bool { return rep[i].InfoGain > rep[j].InfoGain })
	if n > len(rep) {
		n = len(rep)
	}
	fmt.Printf("\ntop %d selected patterns (of %d, last fold):\n", n, len(rep))
	fmt.Printf("%-8s %-8s %-6s %-10s %s\n", "support", "IG", "conf", "class", "pattern")
	for _, r := range rep[:n] {
		fmt.Printf("%-8d %-8.4f %-6.2f %-10s %s\n", r.Support, r.InfoGain, r.Confidence, r.MajorityClass, r.Name)
	}
}

func loadData(path, bundled string, seed int64) (*dfpc.Dataset, error) {
	switch {
	case path != "" && bundled != "":
		return nil, fmt.Errorf("use -data or -dataset, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dfpc.LoadCSV(f, strings.TrimSuffix(path, ".csv"))
	case bundled != "":
		return dfpc.Generate(bundled, seed)
	default:
		return nil, fmt.Errorf("need -data <file.csv> or -dataset <name> (try -list)")
	}
}

func parseFamily(s string) (dfpc.Family, error) {
	switch strings.ToLower(s) {
	case "item_all", "itemall":
		return dfpc.ItemAll, nil
	case "item_fs", "itemfs":
		return dfpc.ItemFS, nil
	case "item_rbf", "itemrbf":
		return dfpc.ItemRBF, nil
	case "pat_all", "patall":
		return dfpc.PatAll, nil
	case "pat_fs", "patfs":
		return dfpc.PatFS, nil
	default:
		return 0, fmt.Errorf("unknown family %q", s)
	}
}
