// Command dfpc-vet runs the repo's static-analysis suite (see
// internal/analysis) over the given package patterns and prints
// file:line:col diagnostics, each tagged with the analyzer that
// produced it.
//
// Usage:
//
//	dfpc-vet [-only a,b] [-skip a,b] [-list] [packages ...]
//
// With no patterns it analyzes ./... from the current directory.
//
// Exit codes are CI-actionable:
//
//	0  clean — every package loaded and no analyzer reported anything
//	1  findings — at least one diagnostic (fix it or //vet:ignore it
//	   with a reason)
//	2  load failure — a package failed to parse or type-check; its
//	   errors go to stderr and the remaining packages are still
//	   analyzed (their findings still print), so one broken package
//	   degrades the run instead of hiding everything else
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dfpc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dfpc-vet", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated analyzers to run (default: all enabled by default)")
	skip := fs.String("skip", "", "comma-separated analyzers to disable")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dfpc-vet [-only a,b] [-skip a,b] [-list] [packages ...]\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *list {
		for _, a := range analysis.All {
			def := " "
			if a.Default {
				def = "*"
			}
			scope := "all packages"
			if len(a.Packages) > 0 {
				scope = strings.Join(a.Packages, ", ")
			}
			summary, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%s %-12s %s (scope: %s)\n", def, a.Name, summary, scope)
		}
		fmt.Println("\n* = enabled by default")
		return 0
	}

	analyzers, err := analysis.Select(*only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfpc-vet:", err)
		return 2
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "dfpc-vet: no analyzers selected")
		return 2
	}

	pkgs, err := analysis.Load(".", fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfpc-vet:", err)
		return 2
	}

	loadFailed := false
	for _, p := range pkgs {
		if len(p.Errs) > 0 {
			loadFailed = true
			fmt.Fprintf(os.Stderr, "dfpc-vet: %s: skipped, failed to load:\n", p.ImportPath)
			for _, e := range p.Errs {
				fmt.Fprintf(os.Stderr, "\t%v\n", e)
			}
		}
	}

	diags := analysis.Run(pkgs, analyzers)
	wd, _ := os.Getwd()
	for _, d := range diags {
		if wd != "" && strings.HasPrefix(d.Pos.Filename, wd+string(os.PathSeparator)) {
			d.Pos.Filename = d.Pos.Filename[len(wd)+1:]
		}
		fmt.Println(d)
	}

	switch {
	case loadFailed:
		return 2
	case len(diags) > 0:
		return 1
	default:
		fmt.Printf("ok\t%d packages, %d analyzers, 0 findings\n", len(pkgs), len(analyzers))
		return 0
	}
}
