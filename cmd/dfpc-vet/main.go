// Command dfpc-vet runs the repo's static-analysis suite (see
// internal/analysis) over the given package patterns and prints
// file:line:col diagnostics, each tagged with the analyzer that
// produced it.
//
// Usage:
//
//	dfpc-vet [-only a,b] [-skip a,b] [-list] [-json] [-waivers]
//	         [-nocache] [-cache-dir dir] [packages ...]
//
// With no patterns it analyzes ./... from the current directory.
//
// -json prints diagnostics as a JSON array (machine-readable, used by
// CI to emit problem-matcher annotations). -waivers prints every
// //vet:ignore comment in the tree with its file:line, analyzers, and
// reason — and exits 1 if any waiver has an empty reason, so the audit
// trail stays complete. Analysis results are cached per package under
// the user cache dir (keyed by source content, dependency export data,
// the analyzer set, the call-graph neighborhood, and the analyzer
// sources themselves); -nocache disables the cache and -cache-dir
// relocates it.
//
// Exit codes are CI-actionable:
//
//	0  clean — every package loaded and no analyzer reported anything
//	1  findings — at least one diagnostic (fix it or //vet:ignore it
//	   with a reason), or a reasonless waiver under -waivers
//	2  load failure — a package failed to parse or type-check; its
//	   errors go to stderr and the remaining packages are still
//	   analyzed (their findings still print), so one broken package
//	   degrades the run instead of hiding everything else
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dfpc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dfpc-vet", flag.ExitOnError)
	only := fs.String("only", "", "comma-separated analyzers to run (default: all enabled by default)")
	skip := fs.String("skip", "", "comma-separated analyzers to disable")
	list := fs.Bool("list", false, "list registered analyzers and exit")
	jsonOut := fs.Bool("json", false, "print diagnostics as a JSON array")
	waivers := fs.Bool("waivers", false, "report every //vet:ignore waiver; exit 1 if any lacks a reason")
	nocache := fs.Bool("nocache", false, "disable the per-package result cache")
	cacheDir := fs.String("cache-dir", "", "cache directory (default: <user cache dir>/dfpc-vet)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dfpc-vet [-only a,b] [-skip a,b] [-list] [-json] [-waivers] [-nocache] [-cache-dir dir] [packages ...]\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	if *list {
		for _, a := range analysis.All {
			def := " "
			if a.Default {
				def = "*"
			}
			scope := "all packages"
			if len(a.Packages) > 0 {
				scope = strings.Join(a.Packages, ", ")
			}
			summary, _, _ := strings.Cut(a.Doc, "\n")
			fmt.Printf("%s %-12s %s (scope: %s)\n", def, a.Name, summary, scope)
		}
		fmt.Println("\n* = enabled by default")
		return 0
	}

	analyzers, err := analysis.Select(*only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfpc-vet:", err)
		return 2
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "dfpc-vet: no analyzers selected")
		return 2
	}

	pkgs, err := analysis.Load(".", fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dfpc-vet:", err)
		return 2
	}

	loadFailed := false
	for _, p := range pkgs {
		if len(p.Errs) > 0 {
			loadFailed = true
			fmt.Fprintf(os.Stderr, "dfpc-vet: %s: skipped, failed to load:\n", p.ImportPath)
			for _, e := range p.Errs {
				fmt.Fprintf(os.Stderr, "\t%v\n", e)
			}
		}
	}

	if *waivers {
		return reportWaivers(pkgs, *jsonOut, loadFailed)
	}

	var cache *analysis.Cache
	if !*nocache {
		dir := *cacheDir
		if dir == "" {
			if base, err := os.UserCacheDir(); err == nil {
				dir = filepath.Join(base, "dfpc-vet")
			}
		}
		if dir != "" {
			cache = analysis.NewCache(dir, analysis.ToolFingerprint("."))
		}
	}

	diags := analysis.RunCached(pkgs, analyzers, cache)
	wd, _ := os.Getwd()
	for i := range diags {
		if wd != "" && strings.HasPrefix(diags[i].Pos.Filename, wd+string(os.PathSeparator)) {
			diags[i].Pos.Filename = diags[i].Pos.Filename[len(wd)+1:]
		}
	}
	if *jsonOut {
		printJSONDiags(diags)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	switch {
	case loadFailed:
		return 2
	case len(diags) > 0:
		return 1
	default:
		if !*jsonOut {
			cacheNote := ""
			if cache != nil {
				cacheNote = fmt.Sprintf(", %d cached", cache.Hits())
			}
			fmt.Printf("ok\t%d packages, %d analyzers, 0 findings%s\n", len(pkgs), len(analyzers), cacheNote)
		}
		return 0
	}
}

// jsonDiag is the machine-readable diagnostic shape consumed by the CI
// problem matcher.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSONDiags(diags []analysis.Diagnostic) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// reportWaivers prints every //vet:ignore in the loaded packages and
// fails the run if any waiver is missing its reason — a waiver without
// a reason is an invisible suppression, which defeats the audit trail.
func reportWaivers(pkgs []*analysis.Package, jsonOut bool, loadFailed bool) int {
	var all []analysis.Waiver
	for _, p := range pkgs {
		all = append(all, p.Waivers()...)
	}
	wd, _ := os.Getwd()
	for i := range all {
		if wd != "" && strings.HasPrefix(all[i].File, wd+string(os.PathSeparator)) {
			all[i].File = all[i].File[len(wd)+1:]
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		return all[i].Line < all[j].Line
	})
	missing := 0
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(all)
		for _, w := range all {
			if w.Reason == "" {
				missing++
			}
		}
	} else {
		for _, w := range all {
			reason := w.Reason
			if reason == "" {
				reason = "MISSING REASON"
				missing++
			}
			fmt.Printf("%s:%d: [%s] %s\n", w.File, w.Line, strings.Join(w.Analyzers, ","), reason)
		}
		fmt.Printf("%d waiver(s), %d missing a reason\n", len(all), missing)
	}
	switch {
	case loadFailed:
		return 2
	case missing > 0:
		fmt.Fprintln(os.Stderr, "dfpc-vet: every //vet:ignore must state its reason")
		return 1
	default:
		return 0
	}
}
