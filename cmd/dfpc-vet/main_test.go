package main

import "testing"

// The fixture tree of internal/analysis doubles as the CLI's exit-code
// oracle: a clean package exits 0, findings exit 1, a type-broken
// package exits 2 (and CI greps stderr accordingly).
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean", []string{"."}, 0},
		{"findings", []string{"../../internal/analysis/testdata/src/floateq/measures"}, 1},
		{"load failure", []string{"../../internal/analysis/testdata/broken"}, 2},
		{"load failure wins over findings", []string{
			"../../internal/analysis/testdata/broken",
			"../../internal/analysis/testdata/src/floateq/measures",
		}, 2},
		{"skip everything", []string{"-only", "floateq", "-skip", "floateq"}, 2},
		{"unknown analyzer", []string{"-only", "nosuch"}, 2},
		{"list", []string{"-list"}, 0},
		{"only scoped elsewhere", []string{"-only", "obsnil", "../../internal/analysis/testdata/src/floateq/measures"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := run(c.args); got != c.want {
				t.Errorf("run(%v) = %d, want %d", c.args, got, c.want)
			}
		})
	}
}
