// Command experiments regenerates the paper's tables and figures on the
// synthetic dataset stand-ins (see DESIGN.md for the experiment index).
//
// Usage:
//
//	experiments -table 1            # Table 1 (SVM, 19 datasets)
//	experiments -table 2            # Table 2 (C4.5)
//	experiments -table 3|4|5        # scalability (Chess/Waveform/Letter)
//	experiments -table harmony      # Section 5 rule-based comparison
//	experiments -figure 1|2|3       # IG/Fisher figures with bounds
//	experiments -figure minsup      # Section 3.2 min_sup sweep
//	experiments -ablations          # DESIGN.md §5 ablation suite
//	experiments -all                # everything
//	experiments -quick              # reduced-fidelity everything (3 folds, samples)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dfpc"
	"dfpc/internal/core"
	"dfpc/internal/datagen"
	"dfpc/internal/durable"
	"dfpc/internal/experiments"
	"dfpc/internal/faults"
	"dfpc/internal/obs"
	"dfpc/internal/parallel"
	"dfpc/internal/telemetry"
)

func main() {
	table := flag.String("table", "", "table to regenerate: 1, 2, 3, 4, 5, or harmony")
	figure := flag.String("figure", "", "figure to regenerate: 1, 2, 3, or minsup")
	ablations := flag.Bool("ablations", false, "run the ablation suite")
	all := flag.Bool("all", false, "run every experiment")
	quick := flag.Bool("quick", false, "reduced fidelity: 3 folds, subsampled dense sets")
	folds := flag.Int("folds", 0, "cross-validation folds (default 10, or 3 with -quick)")
	csvDir := flag.String("csv", "", "also write results as CSV files into this directory")
	verbose := flag.Bool("verbose", false, "print a stage-timing tree after the run")
	reportTo := flag.String("report", "", "write a JSON RunReport of the run here")
	traceTo := flag.String("tracejson", "", "write a Chrome trace_event JSON timeline here (open in ui.perfetto.dev)")
	benchJSON := flag.String("benchjson", "", "run the instrumented pipeline benchmark and write per-stage reports here (e.g. BENCH_pipeline.json)")
	timeout := flag.Duration("timeout", 0, "whole-run wall-clock bound (0 = unbounded)")
	stageTimeout := flag.Duration("stage-timeout", 0, "per-stage wall-clock bound within each fit (0 = unbounded)")
	onBudget := flag.String("on-budget", "fail", "pattern-budget policy: fail, or degrade (escalate min_sup and re-mine)")
	contOnError := flag.Bool("continue-on-error", false, "isolate failing CV folds; table cells then cover the completed folds")
	workers := flag.Int("workers", 1, "worker goroutines for CV folds, mining, MMRFS, and SVM (0 = all CPUs; results are identical at any count)")
	faultSpec := flag.String("faults", "", "deterministic fault-injection spec: point:nth[:kind],... (testing aid)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault arms")
	var prof obs.ProfileFlags
	prof.Register(flag.CommandLine)
	var tf telemetry.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	var ses *telemetry.Session
	fail := func(args ...any) {
		fmt.Fprintln(os.Stderr, append([]any{"experiments:"}, args...)...)
		ses.Close()
		stopProf()
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: profiling:", err)
		}
	}()

	cfg := runConfig{
		folds:        *folds,
		quick:        *quick,
		csvDir:       *csvDir,
		stageTimeout: *stageTimeout,
		contOnError:  *contOnError,
		workers:      parallel.Workers(*workers),
		ctx:          context.Background(),
	}
	switch strings.ToLower(*onBudget) {
	case "", "fail":
		cfg.onBudget = core.FailOnBudget
	case "degrade":
		cfg.onBudget = core.DegradeOnBudget
	default:
		fail(fmt.Errorf("unknown -on-budget policy %q (want fail or degrade)", *onBudget))
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		cfg.ctx, cancel = context.WithTimeout(cfg.ctx, *timeout)
		defer cancel()
	}
	if *verbose || *reportTo != "" || *traceTo != "" || tf.NeedsObserver() {
		cfg.obs = obs.New()
	}
	ses, err = tf.Start(cfg.ctx, "experiments", cfg.obs, *verbose)
	if err != nil {
		fail(err)
	}
	defer ses.Close()
	cfg.log = ses.Log
	cfg.obs.SetLogger(ses.Log) // surface span-leak warnings

	if *faultSpec != "" {
		cfg.faults = faults.New(*faultSeed)
		if err := cfg.faults.Parse(*faultSpec); err != nil {
			fail(err)
		}
	}
	ses.SetFaults(cfg.faults)

	// First SIGINT/SIGTERM cancels the campaign gracefully (journal and
	// completed CSVs intact); a second hard-exits with 130.
	var stopSignals context.CancelFunc
	cfg.ctx, stopSignals = telemetry.HandleSignals(cfg.ctx, ses.Log)
	defer stopSignals()

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, ses, &tf, cfg.workers); err != nil {
			fail(err)
		}
		return
	}
	if cfg.csvDir != "" {
		if err := os.MkdirAll(cfg.csvDir, 0o755); err != nil {
			fail(err)
		}
	}
	if cfg.folds == 0 {
		cfg.folds = 10
		if cfg.quick {
			cfg.folds = 3
		}
	}

	start := time.Now()
	switch {
	case *all:
		err = runAll(cfg)
	case *table != "":
		err = runTable(cfg, *table)
	case *figure != "":
		err = runFigure(cfg, *figure)
	case *ablations:
		err = runAblations(cfg)
	default:
		flag.Usage()
		stopProf()
		os.Exit(2)
	}
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	var rep *dfpc.RunReport
	if cfg.obs != nil {
		rep = cfg.obs.Report("experiments")
		ses.AddRun(rep)
		// Stage detail goes to stderr so stdout carries only the tables
		// and figures themselves.
		if *verbose {
			fmt.Fprintln(os.Stderr)
			rep.WriteTree(os.Stderr)
		}
		if *reportTo != "" {
			if err := durable.WriteAtomic(*reportTo, cfg.faults, rep.WriteJSON); err != nil {
				fail(err)
			}
			ses.Log.Info("run report written", "path", *reportTo)
		}
		if *traceTo != "" {
			if err := durable.WriteAtomic(*traceTo, cfg.faults, rep.WriteTrace); err != nil {
				fail(err)
			}
			ses.Log.Info("trace written", "path", *traceTo)
		}
	}
	kind := "table"
	target := *table
	switch {
	case *all:
		kind, target = "table", "all"
	case *figure != "":
		kind, target = "figure", *figure
	case *ablations:
		kind, target = "table", "ablations"
	}
	ses.Journal(telemetry.Record{
		Kind: kind,
		Config: map[string]any{
			"target": target,
			"folds":  cfg.folds,
			"quick":  cfg.quick,
		},
		Folds:  cfg.folds,
		WallNS: int64(elapsed),
		Stages: telemetry.StagesFromReport(rep),
	})
	fmt.Printf("\ndone in %v\n", elapsed.Round(time.Millisecond))
}

type runConfig struct {
	folds  int
	quick  bool
	csvDir string
	obs    *obs.Observer // nil unless -verbose, -report, -listen, or -journal
	log    *slog.Logger  // the telemetry session's root logger

	// bounded-execution settings threaded into every experiment
	//vet:ignore ctxfirst per-run CLI config carrier: built once in main, read-only after
	ctx          context.Context
	stageTimeout time.Duration
	onBudget     core.BudgetPolicy
	contOnError  bool
	workers      parallel.Workers
	faults       *faults.Registry
}

// protocol builds the experiments.Protocol carrying the run's
// bounded-execution settings.
func (c runConfig) protocol() experiments.Protocol {
	return experiments.Protocol{
		Folds:           c.folds,
		Ctx:             c.ctx,
		StageTimeout:    c.stageTimeout,
		OnBudget:        c.onBudget,
		ContinueOnError: c.contOnError,
		Workers:         c.workers,
		Log:             c.log,
	}
}

// benchDatasets are the generated datasets profiled by -benchjson,
// chosen to cover a small, a medium, and a pattern-dense input.
var benchDatasets = []string{"austral", "breast", "heart"}

// runBenchJSON fits the full Pat_FS+SVM pipeline once per benchmark
// dataset with an observer installed and writes the per-stage reports
// (one RunReport per dataset) as a single JSON document. The output
// seeds the repo's performance trajectory: the check.sh bench gate
// diffs a fresh BENCH_pipeline.json against the committed one. With
// the drift flags set, each dataset also gets its own tracker and a
// journal record of kind "drift" (the benchmark's CV folds score
// against the first fold's baseline — a self-drift smoke, not a
// shifted-split measurement).
func runBenchJSON(path string, ses *telemetry.Session, tf *telemetry.Flags, workers parallel.Workers) error {
	type doc struct {
		Benchmark string            `json:"benchmark"`
		Folds     int               `json:"folds"`
		MinSup    float64           `json:"min_sup"`
		Workers   int               `json:"workers,omitempty"`
		Runs      []*dfpc.RunReport `json:"runs"`
		// Predict is the compiled predict path's throughput/tail-latency
		// section (added with the patmatch trie); benchdiff gates
		// rows_per_sec when the baseline document carries it too.
		Predict []telemetry.PredictBench `json:"predict,omitempty"`
	}
	const minSup = 0.15
	out := doc{Benchmark: "pipeline-stages", Folds: 3, MinSup: minSup,
		Workers: workers.Resolve()}
	for _, name := range benchDatasets {
		d, err := dfpc.Generate(name, 1)
		if err != nil {
			return err
		}
		o := dfpc.NewObserver()
		clf := dfpc.NewClassifier(dfpc.PatFS, dfpc.SVM,
			dfpc.WithMinSupport(minSup), dfpc.WithWorkers(int(workers)))
		drift := tf.NewDriftTracker(o, ses.Log)
		if drift != nil {
			clf.SetDriftTracker(drift)
			ses.EnableDrift(drift)
		}
		res, err := dfpc.CrossValidateContext(context.Background(), clf, d, out.Folds, 1,
			dfpc.CVOptions{Obs: o, Workers: workers})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if drep, derr := drift.Report(); derr == nil && drep != nil && drep.Bound {
			ses.Journal(telemetry.Record{Kind: "drift", Dataset: name, Drift: drep})
		}
		rep := o.Report(name)
		out.Runs = append(out.Runs, rep)
		ses.AddRun(rep)
		ses.Journal(telemetry.Record{
			Kind:        "cv",
			Dataset:     name,
			Config:      map[string]any{"benchmark": out.Benchmark, "min_sup": minSup},
			Folds:       out.Folds,
			Accuracy:    res.Mean,
			AccuracyStd: res.Std,
			WallNS:      rep.WallNS,
			Stages:      telemetry.StagesFromReport(rep),
		})
		fmt.Printf("%-10s accuracy %.2f%% ± %.2f  wall %v\n",
			name, 100*res.Mean, 100*res.Std, time.Duration(rep.WallNS).Round(time.Millisecond))
		pb, err := measurePredict(name, d, minSup, workers)
		if err != nil {
			return fmt.Errorf("%s: predict bench: %w", name, err)
		}
		for _, m := range pb {
			fmt.Printf("%-10s predict batch=%-5d %11.0f rows/s  p99 %v/row\n",
				name, m.Batch, m.RowsPerSec, time.Duration(m.P99NSPerRow))
		}
		out.Predict = append(out.Predict, pb...)
	}
	if err := durable.WriteAtomic(path, nil, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}); err != nil {
		return err
	}
	fmt.Printf("per-stage benchmark written to %s\n", path)
	return nil
}

// predictBatchSizes are the batch sizes profiled by the predict
// throughput section of -benchjson: interactive (1), a typical
// serving request (64), and bulk scoring (1024).
var predictBatchSizes = []int{1, 64, 1024}

// measurePredict fits a fresh Pat_FS+SVM classifier on the whole
// dataset and measures the compiled predict path: rows/sec and
// 99th-percentile per-row latency through PredictBatch at each batch
// size. Row indices cycle through the dataset when a batch exceeds it.
func measurePredict(name string, d *dfpc.Dataset, minSup float64, workers parallel.Workers) ([]telemetry.PredictBench, error) {
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	clf := dfpc.NewClassifier(dfpc.PatFS, dfpc.SVM,
		dfpc.WithMinSupport(minSup), dfpc.WithWorkers(int(workers)))
	if err := clf.Fit(d, rows); err != nil {
		return nil, err
	}
	ctx := context.Background()
	var out []telemetry.PredictBench
	for _, batch := range predictBatchSizes {
		in := make([]int, batch)
		pred := make([]int, batch)
		// Warm once so one-time costs (scorer scratch, page-in) stay out
		// of the samples, then measure enough batches for a stable p99
		// without letting large batches run away on slow machines. The
		// batch window slides across the dataset between samples so even
		// batch=1 scores every row, not row 0 over and over; the index
		// refill happens outside the timed region.
		if err := clf.PredictBatch(ctx, d, in, pred); err != nil {
			return nil, err
		}
		const targetBatches = 256
		samples := make([]int64, 0, targetBatches)
		var totalNS int64
		for len(samples) < targetBatches && totalNS < int64(500*time.Millisecond) {
			off := len(samples) * batch
			for i := range in {
				in[i] = (off + i) % d.NumRows()
			}
			start := time.Now()
			if err := clf.PredictBatch(ctx, d, in, pred); err != nil {
				return nil, err
			}
			el := time.Since(start).Nanoseconds()
			samples = append(samples, el/int64(batch))
			totalNS += el
		}
		out = append(out, telemetry.PredictBench{
			Dataset:     name,
			Batch:       batch,
			Rows:        len(samples) * batch,
			RowsPerSec:  float64(len(samples)*batch) / (float64(totalNS) / 1e9),
			P99NSPerRow: telemetry.P99(samples),
		})
	}
	return out, nil
}

// emitCSV atomically writes one result file when -csv is set, so an
// interrupted campaign never leaves a torn CSV over a complete one.
func (c runConfig) emitCSV(name string, write func(w io.Writer) error) error {
	if c.csvDir == "" {
		return nil
	}
	return durable.WriteAtomic(filepath.Join(c.csvDir, name), c.faults, write)
}

func runAll(cfg runConfig) error {
	for _, t := range []string{"1", "2", "3", "4", "5", "harmony"} {
		if err := runTable(cfg, t); err != nil {
			return err
		}
		fmt.Println()
	}
	for _, f := range []string{"1", "2", "3", "minsup"} {
		if err := runFigure(cfg, f); err != nil {
			return err
		}
		fmt.Println()
	}
	return runAblations(cfg)
}

func runTable(cfg runConfig, table string) error {
	sp := cfg.obs.Start("table").Attr("table", table).Attr("folds", cfg.folds)
	defer sp.End()
	proto := cfg.protocol()
	switch table {
	case "1":
		rows, err := experiments.RunTable1(datagen.Table1Names(), proto)
		if err != nil {
			return err
		}
		experiments.WriteTable1(os.Stdout, rows)
		if err := cfg.emitCSV("table1.csv", func(w io.Writer) error { return experiments.Table1CSV(w, rows) }); err != nil {
			return err
		}
	case "2":
		rows, err := experiments.RunTable2(datagen.Table1Names(), proto)
		if err != nil {
			return err
		}
		experiments.WriteTable2(os.Stdout, rows)
		if err := cfg.emitCSV("table2.csv", func(w io.Writer) error { return experiments.Table2CSV(w, rows) }); err != nil {
			return err
		}
	case "3", "4", "5":
		sc := scalabilityConfig(table, cfg.quick)
		sc.Ctx = cfg.ctx
		rows, err := experiments.RunScalability(sc)
		if err != nil {
			return err
		}
		experiments.WriteScalability(os.Stdout, scalabilityTitle(table), rows)
		if err := cfg.emitCSV("table"+table+".csv", func(w io.Writer) error { return experiments.ScalabilityCSV(w, rows) }); err != nil {
			return err
		}
	case "harmony":
		sample := 0
		if cfg.quick {
			sample = 2000
		}
		rows, err := experiments.RunHarmonyComparison([]string{"waveform", "letter"}, 0.1, sample)
		if err != nil {
			return err
		}
		experiments.WriteHarmony(os.Stdout, rows)
		if err := cfg.emitCSV("harmony.csv", func(w io.Writer) error { return experiments.HarmonyCSV(w, rows) }); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown table %q", table)
	}
	return nil
}

func scalabilityConfig(table string, quick bool) experiments.ScalabilityConfig {
	var sc experiments.ScalabilityConfig
	switch table {
	case "3":
		sc = experiments.ScalabilityConfig{
			Dataset:     "chess",
			AbsSupports: []int{1, 3000, 2800, 2500, 2200, 2000},
		}
		if quick {
			sc.SampleRows = 1200
			sc.AbsSupports = []int{1, 1120, 1050, 940, 830, 750}
		}
	case "4":
		sc = experiments.ScalabilityConfig{
			Dataset:     "waveform",
			AbsSupports: []int{1, 200, 150, 100, 80},
		}
		if quick {
			sc.SampleRows = 1500
			sc.AbsSupports = []int{1, 60, 45, 30, 24}
		}
	case "5":
		sc = experiments.ScalabilityConfig{
			Dataset:     "letter",
			AbsSupports: []int{1, 4500, 4000, 3500, 3000},
		}
		if quick {
			sc.SampleRows = 4000
			sc.AbsSupports = []int{1, 900, 800, 700, 600}
		}
	}
	return sc
}

func scalabilityTitle(table string) string {
	switch table {
	case "3":
		return "Table 3. Accuracy & Time on Chess Data"
	case "4":
		return "Table 4. Accuracy & Time on Waveform Data"
	default:
		return "Table 5. Accuracy & Time on Letter Recognition Data"
	}
}

func runFigure(cfg runConfig, figure string) error {
	sp := cfg.obs.Start("figure").Attr("figure", figure)
	defer sp.End()
	trio := []string{"austral", "breast", "sonar"}
	switch figure {
	case "1":
		rows, err := experiments.RunFigure1(trio, 0.1)
		if err != nil {
			return err
		}
		experiments.WriteFigure1(os.Stdout, rows)
		if err := cfg.emitCSV("figure1.csv", func(w io.Writer) error { return experiments.Figure1CSV(w, rows) }); err != nil {
			return err
		}
	case "2":
		rows, err := experiments.RunFigure2(trio, 0.1, 20)
		if err != nil {
			return err
		}
		experiments.WriteBoundFigure(os.Stdout,
			"Figure 2. Information Gain and the Theoretical Upper Bound vs Support", "IG", rows)
		if err := cfg.emitCSV("figure2.csv", func(w io.Writer) error { return experiments.BoundFigureCSV(w, rows) }); err != nil {
			return err
		}
	case "3":
		rows, err := experiments.RunFigure3(trio, 0.1, 20)
		if err != nil {
			return err
		}
		experiments.WriteBoundFigure(os.Stdout,
			"Figure 3. Fisher Score and the Theoretical Upper Bound vs Support", "Fr", rows)
		if err := cfg.emitCSV("figure3.csv", func(w io.Writer) error { return experiments.BoundFigureCSV(w, rows) }); err != nil {
			return err
		}
	case "minsup":
		rows, err := experiments.RunMinSupSweep("austral",
			[]float64{0.5, 0.4, 0.3, 0.2, 0.15, 0.1, 0.07, 0.05}, cfg.folds)
		if err != nil {
			return err
		}
		experiments.WriteMinSupSweep(os.Stdout, rows)
		if err := cfg.emitCSV("minsup_sweep.csv", func(w io.Writer) error { return experiments.MinSupSweepCSV(w, rows) }); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown figure %q", figure)
	}
	return nil
}

func runAblations(cfg runConfig) error {
	name := "austral"
	type study struct {
		title string
		file  string
		run   func() ([]experiments.AblationRow, error)
	}
	studies := []study{
		{"Ablation: closed vs all frequent patterns", "ablation_closed.csv",
			func() ([]experiments.AblationRow, error) {
				return experiments.RunAblationClosedVsAll(name, 0.15, cfg.folds)
			}},
		{"Ablation: MMRFS vs top-k relevance", "ablation_redundancy.csv",
			func() ([]experiments.AblationRow, error) {
				return experiments.RunAblationRedundancy(name, 0.15, cfg.folds)
			}},
		{"Ablation: information gain vs Fisher relevance", "ablation_relevance.csv",
			func() ([]experiments.AblationRow, error) {
				return experiments.RunAblationRelevance(name, 0.15, cfg.folds)
			}},
		{"Ablation: MMRFS coverage δ", "ablation_coverage.csv",
			func() ([]experiments.AblationRow, error) {
				return experiments.RunAblationCoverage(name, 0.15, []int{1, 2, 3, 5, 10}, cfg.folds)
			}},
		{"Ablation: θ*(IG0) strategy vs hand-set min_sup", "ablation_minsup_strategy.csv",
			func() ([]experiments.AblationRow, error) {
				return experiments.RunAblationMinSupStrategy(name, []float64{0.4, 0.2, 0.1, 0.05}, cfg.folds)
			}},
	}
	for i, s := range studies {
		sp := cfg.obs.Start("ablation").Attr("study", s.file)
		rows, err := s.run()
		sp.End()
		if err != nil {
			return err
		}
		if i > 0 {
			fmt.Println()
		}
		experiments.WriteAblation(os.Stdout, s.title, rows)
		if err := cfg.emitCSV(s.file, func(w io.Writer) error { return experiments.AblationCSV(w, rows) }); err != nil {
			return err
		}
	}
	return nil
}
