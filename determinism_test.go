package dfpc

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"testing"
)

// The parallel execution layer's contract (internal/parallel, threaded
// through mining, MMRFS, SVM, and the CV harness) is that the worker
// count is invisible in every result: same selected patterns, same
// predictions, same fold accuracies. This suite pins the contract end
// to end on two datasets; check.sh runs it under the race detector.

// fitSignature fits one classifier and captures everything the worker
// count could plausibly perturb: the selected pattern features, the
// mined/selected counts, and the predictions on a held-out split.
type fitSignature struct {
	patterns    []string
	minedCount  int
	featCount   int
	predictions []int
	// matcherBytes is the gob encoding of the compiled pattern-matching
	// trie. Compile sorts patterns lexicographically before building, so
	// the trie must come out byte-identical no matter how many workers
	// mined and selected the patterns feeding it.
	matcherBytes []byte
}

func fitOnce(t *testing.T, d *Dataset, workers int) fitSignature {
	t.Helper()
	train, test, err := TrainTestSplit(d, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	clf := NewClassifier(PatFS, SVM,
		WithMinSupport(0.15), WithWorkers(workers))
	if err := clf.Fit(d, train); err != nil {
		t.Fatalf("workers=%d: fit: %v", workers, err)
	}
	pred, err := clf.Predict(d, test)
	if err != nil {
		t.Fatalf("workers=%d: predict: %v", workers, err)
	}
	var sig fitSignature
	for _, fr := range clf.Explain() {
		sig.patterns = append(sig.patterns,
			fmt.Sprintf("%s|%d|%.9f", fr.Name, fr.Support, fr.InfoGain))
	}
	sig.minedCount = clf.Stats.MinedCount
	sig.featCount = clf.Stats.FeatureCount
	sig.predictions = pred
	if m := clf.Matcher(); m != nil {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(m); err != nil {
			t.Fatalf("workers=%d: encode matcher: %v", workers, err)
		}
		sig.matcherBytes = buf.Bytes()
	}
	return sig
}

// TestDeterminismAcrossWorkerCounts: fitted model, selected patterns,
// and predictions are byte-identical at workers 1, 2, and 8.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	for _, name := range []string{"austral", "breast"} {
		t.Run(name, func(t *testing.T) {
			d, err := Generate(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			base := fitOnce(t, d, 1)
			if len(base.patterns) == 0 {
				t.Fatal("baseline selected no patterns; test would be vacuous")
			}
			if len(base.matcherBytes) == 0 {
				t.Fatal("baseline compiled no matcher; test would be vacuous")
			}
			for _, w := range []int{2, 8} {
				got := fitOnce(t, d, w)
				if !reflect.DeepEqual(got.patterns, base.patterns) {
					t.Errorf("workers=%d: selected patterns diverge from sequential", w)
				}
				if got.minedCount != base.minedCount || got.featCount != base.featCount {
					t.Errorf("workers=%d: stats (%d mined, %d selected) != (%d, %d)",
						w, got.minedCount, got.featCount, base.minedCount, base.featCount)
				}
				if !reflect.DeepEqual(got.predictions, base.predictions) {
					t.Errorf("workers=%d: predictions diverge from sequential", w)
				}
				if !bytes.Equal(got.matcherBytes, base.matcherBytes) {
					t.Errorf("workers=%d: compiled matcher bytes diverge from sequential", w)
				}
			}
		})
	}
}

// TestDeterminismCrossValidation: fold accuracies (values AND order)
// and summary statistics are identical at workers 1, 2, and 8 when the
// folds themselves also run concurrently.
func TestDeterminismCrossValidation(t *testing.T) {
	for _, name := range []string{"austral", "breast"} {
		t.Run(name, func(t *testing.T) {
			d, err := Generate(name, 1)
			if err != nil {
				t.Fatal(err)
			}
			run := func(w int) *CVResult {
				clf := NewClassifier(PatFS, SVM,
					WithMinSupport(0.15), WithWorkers(w))
				res, err := CrossValidateContext(nil, clf, d, 3, 1, CVOptions{Workers: Workers(w)})
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				return res
			}
			base := run(1)
			for _, w := range []int{2, 8} {
				got := run(w)
				if !reflect.DeepEqual(got.FoldAccuracies, base.FoldAccuracies) {
					t.Errorf("workers=%d: fold accuracies %v != %v", w, got.FoldAccuracies, base.FoldAccuracies)
				}
				if got.Mean != base.Mean || got.Std != base.Std {
					t.Errorf("workers=%d: mean/std (%v, %v) != (%v, %v)",
						w, got.Mean, got.Std, base.Mean, base.Std)
				}
			}
		})
	}
}
