package dfpc

// Benchmark harness: one benchmark per table and figure of the paper,
// plus the DESIGN.md ablations and micro-benchmarks of the hot paths.
//
// Each table/figure benchmark runs a reduced-fidelity configuration
// (3-fold CV, dataset subsets, subsampled dense sets) so that the whole
// suite completes in minutes on one core; `cmd/experiments` runs the
// full-fidelity versions (10-fold CV, full-size dense datasets, the
// paper's exact min_sup grids). Reported numbers land in
// EXPERIMENTS.md. Benchmarks log their headline result via b.Log so a
// -v run doubles as a results transcript.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"testing"

	"dfpc/internal/c45"
	"dfpc/internal/dataset"
	"dfpc/internal/experiments"
	"dfpc/internal/graphmining"
	"dfpc/internal/mining"
	"dfpc/internal/obs"
	"dfpc/internal/seqmining"
	"dfpc/internal/svm"
)

// benchProto is the reduced protocol shared by the table benches.
var benchProto = experiments.Protocol{Folds: 3}

// benchTable1Names is a representative subset of the 19 datasets:
// categorical, numeric, two-class and multi-class skewed.
var benchTable1Names = []string{"austral", "breast", "heart", "zoo"}

func BenchmarkTable1SVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(benchTable1Names, benchProto)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Logf("table1 %-8s Item_All=%.2f Item_FS=%.2f Item_RBF=%.2f Pat_All=%.2f Pat_FS=%.2f",
				r.Dataset, r.ItemAll, r.ItemFS, r.ItemRBF, r.PatAll, r.PatFS)
		}
	}
}

func BenchmarkTable2C45(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable2(benchTable1Names, benchProto)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Logf("table2 %-8s Item_All=%.2f Item_FS=%.2f Pat_All=%.2f Pat_FS=%.2f",
				r.Dataset, r.ItemAll, r.ItemFS, r.PatAll, r.PatFS)
		}
	}
}

func benchScalability(b *testing.B, cfg experiments.ScalabilityConfig) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunScalability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Infeasible {
				b.Logf("%s min_sup=%d N/A (budget exceeded)", cfg.Dataset, r.MinSupport)
				continue
			}
			b.Logf("%s min_sup=%d patterns=%d time=%.3fs svm=%.2f c45=%.2f",
				cfg.Dataset, r.MinSupport, r.Patterns, r.Time.Seconds(), r.SVMAcc, r.C45Acc)
		}
	}
}

func BenchmarkTable3Chess(b *testing.B) {
	benchScalability(b, experiments.ScalabilityConfig{
		Dataset:     "chess",
		AbsSupports: []int{1, 1120, 1050, 940, 830, 750},
		SampleRows:  1200,
		MaxPatterns: 500_000,
	})
}

func BenchmarkTable4Waveform(b *testing.B) {
	benchScalability(b, experiments.ScalabilityConfig{
		Dataset:     "waveform",
		AbsSupports: []int{1, 60, 45},
		SampleRows:  1500,
		MaxPatterns: 300_000,
	})
}

func BenchmarkTable5Letter(b *testing.B) {
	benchScalability(b, experiments.ScalabilityConfig{
		Dataset:     "letter",
		AbsSupports: []int{1, 700, 600},
		SampleRows:  3000,
		MaxPatterns: 300_000,
	})
}

func BenchmarkHarmonyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunHarmonyComparison([]string{"waveform"}, 0.1, 2000)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Logf("harmony %s Pat_FS=%.2f HARMONY=%.2f CBA=%.2f", r.Dataset, r.PatFS, r.Harmony, r.CBA)
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFigure1([]string{"austral", "breast", "sonar"}, 0.1)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("figure1: %d (dataset, length) series points", len(rows))
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFigure2([]string{"austral", "breast", "sonar"}, 0.1, 20)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.MaxValue > r.Bound+1e-9 {
				b.Fatalf("bound violated at support %d: %v > %v", r.Support, r.MaxValue, r.Bound)
			}
		}
		b.Logf("figure2: %d support buckets, all under the IG bound", len(rows))
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFigure3([]string{"austral", "breast", "sonar"}, 0.1, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("figure3: %d support buckets", len(rows))
	}
}

func BenchmarkMinSupSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunMinSupSweep("austral", []float64{0.4, 0.2, 0.1, 0.05}, 3)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Logf("minsup %.2f patterns=%d acc=%.2f", r.MinSupport, r.Patterns, r.Accuracy)
		}
	}
}

// Ablation benchmarks (DESIGN.md §5).

func benchAblation(b *testing.B, run func() ([]experiments.AblationRow, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := run()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.Logf("%-28s features=%d acc=%.2f", r.Variant, r.Features, r.Accuracy)
		}
	}
}

func BenchmarkAblationClosedVsAll(b *testing.B) {
	benchAblation(b, func() ([]experiments.AblationRow, error) {
		return experiments.RunAblationClosedVsAll("austral", 0.15, 3)
	})
}

func BenchmarkAblationRedundancy(b *testing.B) {
	benchAblation(b, func() ([]experiments.AblationRow, error) {
		return experiments.RunAblationRedundancy("austral", 0.15, 3)
	})
}

func BenchmarkAblationRelevance(b *testing.B) {
	benchAblation(b, func() ([]experiments.AblationRow, error) {
		return experiments.RunAblationRelevance("austral", 0.15, 3)
	})
}

func BenchmarkAblationCoverage(b *testing.B) {
	benchAblation(b, func() ([]experiments.AblationRow, error) {
		return experiments.RunAblationCoverage("austral", 0.15, []int{1, 3, 5}, 3)
	})
}

func BenchmarkAblationMinSupStrategy(b *testing.B) {
	benchAblation(b, func() ([]experiments.AblationRow, error) {
		return experiments.RunAblationMinSupStrategy("austral", []float64{0.3, 0.1}, 3)
	})
}

// Micro-benchmarks of the pipeline's hot paths.

func benchBinary(b *testing.B, name string) *dataset.Binary {
	b.Helper()
	d, err := Generate(name, 1)
	if err != nil {
		b.Fatal(err)
	}
	bin, err := dataset.Encode(d)
	if err != nil {
		b.Fatal(err)
	}
	return bin
}

func BenchmarkFPCloseChess(b *testing.B) {
	bin := benchBinary(b, "chess")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mining.MinePerClass(bin, mining.PerClassOptions{
			MinSupport: 0.78, Closed: true, MinLen: 2,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFPGrowthVsFPClose(b *testing.B) {
	bin := benchBinary(b, "chess")
	tx := make([][]int32, 0, 800)
	for i := 0; i < 800; i++ {
		tx = append(tx, bin.Rows[i])
	}
	b.Run("FPGrowth", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mining.FPGrowth(tx, mining.Options{MinSupport: 600}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("FPClose", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mining.FPClose(tx, mining.Options{MinSupport: 600}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Apriori", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mining.Apriori(tx, mining.Options{MinSupport: 600}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSVMTrainBreast(b *testing.B) {
	bin := benchBinary(b, "breast")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svm.Train(bin.Rows, bin.Labels, bin.NumClasses(), svm.Config{
			C: 1, NumFeatures: bin.NumItems(),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkC45TrainBreast(b *testing.B) {
	bin := benchBinary(b, "breast")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c45.Train(bin.Rows, bin.Labels, bin.NumClasses(), c45.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndPatFS(b *testing.B) {
	d, err := Generate("heart", 1)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf := NewClassifier(PatFS, SVM, WithMinSupport(0.15))
		if err := clf.Fit(d, rows); err != nil {
			b.Fatal(err)
		}
		if _, err := clf.Predict(d, rows[:50]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineParallel runs the BENCH_pipeline.json configuration
// (3-fold CV, Pat_FS+SVM, min_sup 0.15, austral) at several worker
// counts. Folds, per-class mining, the MMRFS gain scan, and the
// one-vs-one SVM subproblems all schedule through internal/parallel, so
// on a multi-core machine the workers=GOMAXPROCS variant should
// approach fold-level speedup; on one core every variant collapses to
// the same sequential path. Results are identical at every count —
// that is the layer's contract, pinned by TestDeterminismAcrossWorkerCounts.
func BenchmarkPipelineParallel(b *testing.B) {
	d, err := Generate("austral", 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", w)
		if w == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clf := NewClassifier(PatFS, SVM,
					WithMinSupport(0.15), WithWorkers(w))
				res, err := CrossValidateContext(nil, clf, d, 3, 1,
					CVOptions{Workers: Workers(w)})
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%s accuracy %.2f%% ± %.2f", name, 100*res.Mean, 100*res.Std)
				}
			}
		})
	}
}

// BenchmarkFitInstrumentationOff is the no-observer, no-logger
// baseline for the observability layer: it must match
// BenchmarkEndToEndPatFS, since a nil observer and nil logger reduce
// every span/counter/histogram/log call to a nil check. Compare with
// BenchmarkFitInstrumentationOn to see the recording cost.
func BenchmarkFitInstrumentationOff(b *testing.B) {
	benchFitObserved(b, nil, nil)
}

// BenchmarkFitInstrumentationOn measures the same fit with a live
// observer recording spans, counters, and stage-duration histograms.
func BenchmarkFitInstrumentationOn(b *testing.B) {
	benchFitObserved(b, NewObserver(), nil)
}

// BenchmarkFitInstrumentationOnWithLog additionally installs an
// enabled-but-discarding slog logger, pricing the logging plumbing
// itself (attribute construction never happens: the discard handler
// rejects every level before formatting).
func BenchmarkFitInstrumentationOnWithLog(b *testing.B) {
	benchFitObserved(b, NewObserver(), obs.DiscardLogger())
}

// BenchmarkFitIntrospectionDeep prices the full introspection path on
// top of the live observer: snapshotting the RunReport, exporting the
// Perfetto trace, and producing per-prediction explanations. Compare
// against BenchmarkFitInstrumentationOn for the introspection surcharge
// and against BenchmarkFitInstrumentationOff for the total.
func BenchmarkFitIntrospectionDeep(b *testing.B) {
	d, err := Generate("heart", 1)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	o := NewObserver()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Reset()
		clf := NewClassifier(PatFS, SVM, WithMinSupport(0.15), WithObserver(o))
		if err := clf.Fit(d, rows); err != nil {
			b.Fatal(err)
		}
		if _, err := clf.PredictExplain(context.Background(), d, rows[:50]); err != nil {
			b.Fatal(err)
		}
		if err := o.Report("bench").WriteTrace(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFitObserved(b *testing.B, o *Observer, log *slog.Logger) {
	d, err := Generate("heart", 1)
	if err != nil {
		b.Fatal(err)
	}
	rows := make([]int, d.NumRows())
	for i := range rows {
		rows[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if o != nil {
			o.Reset()
		}
		clf := NewClassifier(PatFS, SVM, WithMinSupport(0.15), WithObserver(o), WithLogger(log))
		if err := clf.Fit(d, rows); err != nil {
			b.Fatal(err)
		}
		if _, err := clf.Predict(d, rows[:50]); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension benchmarks: the paper's future-work directions (sequence
// and graph classification) end-to-end.

func BenchmarkSequenceExtension(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var db []seqmining.Sequence
	var y []int
	for i := 0; i < 200; i++ {
		c := i % 2
		var s seqmining.Sequence
		for j := 0; j < 3+r.Intn(4); j++ {
			s = append(s, int32(r.Intn(5)))
		}
		if c == 0 {
			s = append(s, 5, int32(r.Intn(5)), 6)
		} else {
			s = append(s, 6, int32(r.Intn(5)), 5)
		}
		db = append(db, s)
		y = append(y, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf := &seqmining.Classifier{MinSupport: 0.4, MaxLen: 3}
		if err := clf.Fit(db, y, 2); err != nil {
			b.Fatal(err)
		}
		if _, err := clf.PredictAll(db[:20]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphExtension(b *testing.B) {
	var db []*graphmining.Graph
	var y []int
	for i := 0; i < 60; i++ {
		c := i % 2
		g := &graphmining.Graph{VertexLabels: []int32{1, 2, 3}}
		g.Edges = []graphmining.Edge{{From: 0, To: 1}, {From: 1, To: 2}}
		if c == 0 {
			g.Edges = append(g.Edges, graphmining.Edge{From: 0, To: 2})
		}
		db = append(db, g)
		y = append(y, c)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clf := &graphmining.Classifier{MinSupport: 0.5, MaxEdges: 3}
		if err := clf.Fit(db, y, 2); err != nil {
			b.Fatal(err)
		}
		if _, err := clf.PredictAll(db[:10]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLearners compares the four learners on the same
// Pat_FS feature space — the framework's learner-agnosticism in
// numbers.
func BenchmarkAblationLearners(b *testing.B) {
	d, err := Generate("heart", 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, l := range []Learner{SVM, C45, NaiveBayes, KNN} {
			clf := NewClassifier(PatFS, l, WithMinSupport(0.15))
			res, err := CrossValidate(clf, d, 3, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("learner %-10v acc=%.2f", l, 100*res.Mean)
		}
	}
}
