// sequence_classification demonstrates the paper's future-work
// extension (Section 6: "The framework is also applicable to more
// complex patterns, including sequences and graphs"): classification of
// event sequences using discriminative frequent subsequences mined with
// PrefixSpan and selected with MMRFS.
//
// The synthetic task is order-sensitive by construction: class 0
// sessions contain the motif login→purchase, class 1 sessions the
// motif purchase→login (a fraud-like signature). The event VOCABULARY
// is identical in both classes — only the order discriminates, so
// bag-of-events models fail while subsequence features succeed.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dfpc/internal/seqmining"
)

var eventNames = []string{"browse", "search", "cart", "review", "help", "login", "purchase"}

func makeSessions(n int, seed int64) (db []seqmining.Sequence, y []int) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		c := i % 2
		var s seqmining.Sequence
		for j := 0; j < 3+r.Intn(5); j++ {
			s = append(s, int32(r.Intn(5))) // noise events 0..4
		}
		if c == 0 {
			s = append(s, 5) // login
			s = append(s, int32(r.Intn(5)))
			s = append(s, 6) // purchase
		} else {
			s = append(s, 6) // purchase first…
			s = append(s, int32(r.Intn(5)))
			s = append(s, 5) // …then login
		}
		for j := 0; j < r.Intn(3); j++ {
			s = append(s, int32(r.Intn(5)))
		}
		db = append(db, s)
		y = append(y, c)
	}
	return db, y
}

func render(events []int32) string {
	out := ""
	for i, e := range events {
		if i > 0 {
			out += " → "
		}
		out += eventNames[e]
	}
	return out
}

func main() {
	train, yTrain := makeSessions(300, 1)
	test, yTest := makeSessions(120, 2)
	fmt.Printf("%d training sessions, %d test sessions, 2 classes\n\n", len(train), len(test))

	clf := &seqmining.Classifier{MinSupport: 0.4, MaxLen: 3, Coverage: 3}
	if err := clf.Fit(train, yTrain, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subsequences mined: %d, selected by MMRFS: %d\n", clf.MinedCount, clf.SelectedCount)

	pred, err := clf.PredictAll(test)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i := range pred {
		if pred[i] == yTest[i] {
			correct++
		}
	}
	fmt.Printf("test accuracy: %.2f%%\n\n", 100*float64(correct)/float64(len(pred)))

	// Show a few of the selected discriminative subsequences,
	// preferring ones that involve the signature events.
	fmt.Println("selected discriminative subsequences (sample):")
	shown := 0
	for _, p := range clf.Patterns() {
		if p.Events[0] >= 5 || p.Events[p.Len()-1] >= 5 {
			fmt.Printf("  %-30s support %d\n", render(p.Events), p.Support)
			if shown++; shown == 5 {
				break
			}
		}
	}
}
