// minsup_strategy demonstrates the paper's Section 3.2 analysis: the
// information-gain upper bound as a function of pattern support, and
// the strategy that maps a feature-filter threshold IG0 to a minimum
// support θ* = argmax_θ (IGub(θ) ≤ IG0), so mining at min_sup = θ*
// skips no feature an IG filter would keep.
package main

import (
	"fmt"
	"log"

	"dfpc"
)

func main() {
	d, err := dfpc.Generate("breast", 1)
	if err != nil {
		log.Fatal(err)
	}
	n := d.NumRows()

	// Class prior p (minority class) drives the bound.
	counts := make([]int, d.NumClasses())
	for _, y := range d.Labels {
		counts[y]++
	}
	p := float64(counts[1]) / float64(n)
	if p > 0.5 {
		p = 1 - p
	}
	fmt.Printf("dataset %s: n = %d, minority prior p = %.3f\n\n", d.Name, n, p)

	// The theoretical envelope: low-support features cannot be very
	// discriminative; neither can near-universal ones ("stop words").
	fmt.Println("support θ      IGub(θ)")
	for _, theta := range []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 0.95} {
		fmt.Printf("   %5.2f        %.4f\n", theta, dfpc.IGUpperBound(theta, p))
	}

	// The strategy: pick IG0, get the largest support that an IG filter
	// at IG0 would discard anyway.
	fmt.Println("\nIG0 filter  →  θ* (largest skippable support)")
	for _, ig0 := range []float64{0.01, 0.03, 0.05, 0.1, 0.2} {
		s, err := dfpc.MinSupportForIG(ig0, p, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %4.2f     →  %4d  (θ = %.4f)\n", ig0, s, float64(s)/float64(n))
	}

	// The same strategy runs inside the classifier when no explicit
	// min_sup is given.
	clf := dfpc.NewClassifier(dfpc.PatFS, dfpc.SVM,
		dfpc.WithMinSupport(-1),    // derive from IG0
		dfpc.WithIGThreshold(0.03), // the filter level
	)
	res, err := dfpc.CrossValidate(clf, d, 5, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPat_FS with automatic min_sup: accuracy %.2f%%, derived min_sup %.4f\n",
		100*res.Mean, clf.Stats.MinSupport)

	// Verify the envelope empirically: no mined feature's information
	// gain exceeds the bound at its support.
	stats, classCounts, err := dfpc.AnalyzePatterns(d, 0.1, true)
	if err != nil {
		log.Fatal(err)
	}
	curve := dfpc.IGBoundCurve(classCounts)
	violations := 0
	maxIG, maxBound := 0.0, 0.0
	for _, s := range stats {
		if s.Support < 1 || s.Support > len(curve) {
			continue
		}
		b := curve[s.Support-1].Bound
		if s.InfoGain > b+1e-9 {
			violations++
		}
		if s.InfoGain > maxIG {
			maxIG = s.InfoGain
		}
		if b > maxBound {
			maxBound = b
		}
	}
	fmt.Printf("checked %d features: %d bound violations (max IG %.3f vs max bound %.3f)\n",
		len(stats), violations, maxIG, maxBound)
}
