// associative_baselines reproduces the paper's Section 5 comparison in
// miniature: the frequent-pattern framework (Pat_FS) against three
// associative classifiers — a CBA-style ordered rule list, a
// HARMONY-style instance-centric rule set, and a CMAR-style weighted-χ²
// multiple-rule classifier — on the same binary item encoding. The
// paper reports Pat_FS beating HARMONY by up to 11.94% (Waveform) and
// 3.40% (Letter).
package main

import (
	"fmt"
	"log"

	"dfpc"
	"dfpc/internal/dataset"
	"dfpc/internal/rules"
)

func main() {
	d, err := dfpc.Generate("waveform", 1)
	if err != nil {
		log.Fatal(err)
	}
	// Subsample for a fast demo run; cmd/experiments -table harmony
	// runs the full-size comparison.
	train, test, err := dfpc.TrainTestSplit(d, 0.75, 5)
	if err != nil {
		log.Fatal(err)
	}
	sub := d.Subset(append(append([]int{}, train...), test...))
	nTrain := len(train)
	trainRows := make([]int, nTrain)
	testRows := make([]int, len(test))
	for i := range trainRows {
		trainRows[i] = i
	}
	for i := range testRows {
		testRows[i] = nTrain + i
	}
	fmt.Printf("dataset %s: %d train, %d test rows, %d classes\n\n",
		d.Name, len(trainRows), len(testRows), d.NumClasses())

	const minSup = 0.1

	// The frequent-pattern framework.
	clf := dfpc.NewClassifier(dfpc.PatFS, dfpc.SVM, dfpc.WithMinSupport(minSup))
	acc, err := dfpc.Evaluate(clf, sub, trainRows, testRows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pat_FS (framework):        %6.2f%%\n", 100*acc)

	// The rule-based baselines operate on the same binary encoding.
	bTrain, err := dataset.Encode(sub.Subset(trainRows))
	if err != nil {
		log.Fatal(err)
	}
	bTest, err := dataset.Encode(sub.Subset(testRows))
	if err != nil {
		log.Fatal(err)
	}

	harmony, err := rules.TrainHarmony(bTrain, rules.HarmonyOptions{MinSupport: minSup, TopK: 5, MaxLen: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HARMONY-style (%4d rules): %6.2f%%\n", len(harmony.Rules), evalRules(bTest, harmony.Predict))

	cba, err := rules.TrainCBA(bTrain, rules.CBAOptions{MinSupport: minSup, MinConfidence: 0.5, MaxLen: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CBA-style     (%4d rules): %6.2f%%\n", len(cba.Rules), evalRules(bTest, cba.Predict))

	cmar, err := rules.TrainCMAR(bTrain, rules.CMAROptions{MinSupport: minSup, MinConfidence: 0.5, MaxLen: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CMAR-style    (%4d rules): %6.2f%%\n", len(cmar.Rules), evalRules(bTest, cmar.Predict))
}

func evalRules(b *dataset.Binary, predict func([]int32) int) float64 {
	correct := 0
	for i := 0; i < b.NumRows(); i++ {
		if predict(b.Rows[i]) == b.Labels[i] {
			correct++
		}
	}
	return 100 * float64(correct) / float64(b.NumRows())
}
