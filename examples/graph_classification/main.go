// graph_classification demonstrates the paper's second future-work
// extension: classification of labelled graphs with discriminative
// frequent subgraphs — the setting of the paper's reference [7]
// (classifying chemical compounds by frequent substructures).
//
// The synthetic task mimics a toxicophore: class "toxic" molecules
// contain a nitro-like triangle motif N-O-O; class "safe" molecules use
// the same atom vocabulary in chain form. Atom counts are similar
// across classes, so label-frequency features fail while substructure
// features succeed.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dfpc/internal/graphmining"
)

var atoms = []string{"C", "N", "O", "H", "S"}

const (
	carbon   = 0
	nitrogen = 1
	oxygen   = 2
	hydrogen = 3
	sulfur   = 4
)

// molecule builds a random chain of carbons and decorates it with the
// class motif: a N-O-O ring for toxic molecules, a N-O, O chain for
// safe ones (same atoms, different topology).
func molecule(toxic bool, r *rand.Rand) *graphmining.Graph {
	g := &graphmining.Graph{}
	// Carbon backbone.
	backbone := 3 + r.Intn(3)
	for i := 0; i < backbone; i++ {
		g.VertexLabels = append(g.VertexLabels, carbon)
		if i > 0 {
			g.Edges = append(g.Edges, graphmining.Edge{From: i - 1, To: i, Label: 0})
		}
	}
	attach := r.Intn(backbone)
	n := len(g.VertexLabels)
	g.VertexLabels = append(g.VertexLabels, nitrogen, oxygen, oxygen)
	g.Edges = append(g.Edges,
		graphmining.Edge{From: attach, To: n, Label: 0}, // C-N
		graphmining.Edge{From: n, To: n + 1, Label: 0},  // N-O
	)
	if toxic {
		// Close the N-O-O ring.
		g.Edges = append(g.Edges,
			graphmining.Edge{From: n + 1, To: n + 2, Label: 0}, // O-O
			graphmining.Edge{From: n, To: n + 2, Label: 0},     // N-O
		)
	} else {
		// Same atoms, open chain: the second O hangs off the backbone.
		g.Edges = append(g.Edges,
			graphmining.Edge{From: (attach + 1) % backbone, To: n + 2, Label: 0}, // C-O
		)
	}
	// Random hydrogens on both classes.
	for i := 0; i < r.Intn(3); i++ {
		v := len(g.VertexLabels)
		g.VertexLabels = append(g.VertexLabels, hydrogen)
		g.Edges = append(g.Edges, graphmining.Edge{From: r.Intn(backbone), To: v, Label: 0})
	}
	return g
}

func makeDB(n int, seed int64) (db []*graphmining.Graph, y []int) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		toxic := i%2 == 0
		db = append(db, molecule(toxic, r))
		if toxic {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	return db, y
}

func render(g *graphmining.Graph) string {
	out := ""
	for i, e := range g.Edges {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s-%s", atoms[g.VertexLabels[e.From]], atoms[g.VertexLabels[e.To]])
	}
	return out
}

func main() {
	train, yTrain := makeDB(200, 1)
	test, yTest := makeDB(80, 2)
	fmt.Printf("%d training molecules, %d test molecules\n\n", len(train), len(test))

	clf := &graphmining.Classifier{MinSupport: 0.4, MaxEdges: 3}
	if err := clf.Fit(train, yTrain, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("subgraphs mined: %d, selected by MMRFS: %d\n", clf.MinedCount, clf.SelectedCount)

	pred, err := clf.PredictAll(test)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i := range pred {
		if pred[i] == yTest[i] {
			correct++
		}
	}
	fmt.Printf("test accuracy: %.2f%%\n\n", 100*float64(correct)/float64(len(pred)))

	fmt.Println("selected substructures (sample):")
	for i, p := range clf.Patterns() {
		if i == 5 {
			break
		}
		fmt.Printf("  {%s}  support %d\n", render(p.Graph), p.Support)
	}
}
