// feature_selection demonstrates why MMRFS matters: it contrasts the
// paper's three feature regimes — all single features, all frequent
// patterns (Pat_All, prone to overfitting), and MMRFS-selected patterns
// (Pat_FS) — and shows the effect of the coverage parameter δ on the
// size of the selected set.
package main

import (
	"fmt"
	"log"

	"dfpc"
)

func main() {
	d, err := dfpc.Generate("heart", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d rows, %d classes\n\n", d.Name, d.NumRows(), d.NumClasses())

	const minSup = 0.1
	type variant struct {
		name string
		clf  *dfpc.Classifier
	}
	variants := []variant{
		{"Item_All  (single features)", dfpc.NewClassifier(dfpc.ItemAll, dfpc.SVM)},
		{"Pat_All   (no selection)", dfpc.NewClassifier(dfpc.PatAll, dfpc.SVM, dfpc.WithMinSupport(minSup))},
		{"Pat_FS    (MMRFS, IG)", dfpc.NewClassifier(dfpc.PatFS, dfpc.SVM, dfpc.WithMinSupport(minSup))},
		{"Pat_FS    (MMRFS, Fisher)", dfpc.NewClassifier(dfpc.PatFS, dfpc.SVM, dfpc.WithMinSupport(minSup), dfpc.WithFisherRelevance())},
	}
	fmt.Println("variant                        accuracy   mined  selected")
	for _, v := range variants {
		res, err := dfpc.CrossValidate(v.clf, d, 5, 11)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s   %6.2f%%  %6d    %6d\n",
			v.name, 100*res.Mean, v.clf.Stats.MinedCount, v.clf.Stats.FeatureCount)
	}

	// The coverage parameter δ controls how many patterns MMRFS keeps:
	// every training instance must be correctly covered δ times.
	fmt.Println("\nMMRFS coverage δ sweep:")
	fmt.Println("δ     accuracy   selected")
	for _, delta := range []int{1, 2, 3, 5, 10} {
		clf := dfpc.NewClassifier(dfpc.PatFS, dfpc.SVM,
			dfpc.WithMinSupport(minSup), dfpc.WithCoverage(delta))
		res, err := dfpc.CrossValidate(clf, d, 5, 11)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4d   %6.2f%%   %6d\n", delta, 100*res.Mean, clf.Stats.FeatureCount)
	}
}
