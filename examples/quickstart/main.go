// Quickstart: train and evaluate a frequent pattern-based classifier on
// a benchmark dataset and compare it against the single-feature
// baseline — the paper's headline experiment on one dataset.
package main

import (
	"fmt"
	"log"

	"dfpc"
)

func main() {
	// Generate a benchmark dataset (a synthetic stand-in for the UCI
	// "austral" credit-approval data: 690 rows, 14 attributes, 2
	// classes). To use your own data: dfpc.LoadCSV(file, "name").
	d, err := dfpc.Generate("austral", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d rows, %d attributes, %d classes\n\n",
		d.Name, d.NumRows(), d.NumAttrs(), d.NumClasses())

	// Item_All: a linear SVM over single features only.
	baseline := dfpc.NewClassifier(dfpc.ItemAll, dfpc.SVM)
	base, err := dfpc.CrossValidate(baseline, d, 10, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Item_All (single features):            %6.2f%%\n", 100*base.Mean)

	// Pat_FS: the paper's framework — closed frequent patterns mined per
	// class at min_sup, MMRFS-selected, appended to the feature space.
	patterns := dfpc.NewClassifier(dfpc.PatFS, dfpc.SVM,
		dfpc.WithMinSupport(0.1), // relative min_sup θ0
		dfpc.WithCoverage(3),     // MMRFS database coverage δ
	)
	pat, err := dfpc.CrossValidate(patterns, d, 10, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pat_FS (discriminative patterns):      %6.2f%%\n", 100*pat.Mean)
	fmt.Printf("\npatterns mined %d, selected %d (last fold)\n",
		patterns.Stats.MinedCount, patterns.Stats.FeatureCount)
	fmt.Printf("improvement: %+.2f points\n", 100*(pat.Mean-base.Mean))
}
